(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. V) on the simulated GeForce 8800 GTS 512, plus
   Bechamel micro-benchmarks of the compiler itself.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table1 table2 fig10 fig11 ilpstats solvertime coalesce micro
*)

open Streamit

let arch = Gpusim.Arch.geforce_8800_gts_512

(* Compile results are shared across experiments. *)
type compiled_bench = {
  entry : Benchmarks.Registry.entry;
  graph : Graph.t;
  swp : Swp_core.Compile.compiled;
  swpnc : Swp_core.Compile.compiled option;
}

let compile_all () =
  List.map
    (fun (e : Benchmarks.Registry.entry) ->
      let graph = Flatten.flatten (e.stream ()) in
      let swp =
        match Swp_core.Compile.compile graph with
        | Ok c -> c
        | Error m -> failwith (e.name ^ ": " ^ m)
      in
      let swpnc =
        match
          Swp_core.Compile.compile ~scheme:Swp_core.Compile.Swp_non_coalesced
            graph
        with
        | Ok c -> Some c
        | Error _ -> None
      in
      { entry = e; graph; swp; swpnc })
    Benchmarks.Registry.all

let speedup_of cb cycles =
  match
    Swp_core.Executor.speedup ~arch ~graph:cb.graph
      ~gpu_cycles_per_steady:cycles ()
  with
  | Ok s -> s
  | Error m -> failwith m

let swp_speedup cb ~coarsening c =
  let cn = Swp_core.Compile.recoarsen c coarsening in
  speedup_of cb (Swp_core.Executor.time_swp cn).Swp_core.Executor.cycles_per_steady

let geomean xs =
  exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

let line () = print_endline (String.make 78 '-')

(* --- Table I: benchmark suite --- *)

let table1 benches =
  print_endline "\n=== Table I: Benchmarks Evaluated ===";
  line ();
  Printf.printf "%-12s %8s %8s %10s %10s  %s\n" "Benchmark" "Filters"
    "(paper)" "Peeking" "(paper)" "Description";
  line ();
  List.iter
    (fun cb ->
      let e = cb.entry in
      Printf.printf "%-12s %8d %8d %10d %10d  %s\n" e.name
        (Benchmarks.Registry.our_filters e)
        e.paper_filters
        (Benchmarks.Registry.our_peeking e)
        e.paper_peeking e.description)
    benches;
  line ();
  print_endline
    "note: our re-implementations are somewhat coarser-grained than the\n\
     StreamIt 2.1.1 sources (fewer but heavier filters); peeking counts\n\
     match Table I exactly for Filterbank and FMRadio."

(* --- Table II: buffer requirements of SWP8 --- *)

let table2 benches =
  print_endline "\n=== Table II: Buffer requirements (bytes), SWP8 ===";
  line ();
  Printf.printf "%-12s %16s %16s %8s\n" "Benchmark" "ours (SWP8)" "paper" "ratio";
  line ();
  List.iter
    (fun cb ->
      let c8 = Swp_core.Compile.recoarsen cb.swp 8 in
      let b = c8.Swp_core.Compile.sizing.Swp_core.Buffer_layout.total_bytes in
      Printf.printf "%-12s %16d %16d %8.2f\n" cb.entry.name b
        cb.entry.paper_buffer_bytes
        (float_of_int b /. float_of_int cb.entry.paper_buffer_bytes))
    benches;
  line ()

(* --- Figure 10: SWPNC vs Serial vs SWP8 --- *)

let fig10 benches =
  print_endline
    "\n=== Figure 10: speedup over single-threaded CPU (SWPNC / Serial / SWP8) ===";
  line ();
  Printf.printf "%-12s %10s %10s %10s\n" "Benchmark" "SWPNC" "Serial" "SWP8";
  line ();
  let cols = ref ([], [], []) in
  List.iter
    (fun cb ->
      let c8 = Swp_core.Compile.recoarsen cb.swp 8 in
      let swp8 = swp_speedup cb ~coarsening:8 cb.swp in
      let serial =
        match
          Swp_core.Executor.time_serial
            ~batch:(64 * cb.swp.Swp_core.Compile.config.Swp_core.Select.scale)
            cb.graph
            ~budget_bytes:c8.Swp_core.Compile.sizing.Swp_core.Buffer_layout.total_bytes
        with
        | Ok st -> speedup_of cb st.Swp_core.Executor.cycles_per_steady
        | Error m -> failwith m
      in
      let swpnc =
        match cb.swpnc with
        | Some c -> swp_speedup cb ~coarsening:8 c
        | None -> nan
      in
      let a, b, c = !cols in
      cols := (swpnc :: a, serial :: b, swp8 :: c);
      Printf.printf "%-12s %10.2f %10.2f %10.2f\n" cb.entry.name swpnc serial swp8)
    benches;
  line ();
  let a, b, c = !cols in
  Printf.printf "%-12s %10.2f %10.2f %10.2f\n" "GeoMean" (geomean a) (geomean b)
    (geomean c);
  line ();
  print_endline
    "expected shape (paper): SWP8 wins everywhere except DCT and MatrixMult,\n\
     where the Serial SAS baseline is slightly ahead; SWPNC collapses except\n\
     where per-filter working sets fit in shared memory."

(* --- Figure 11: coarsening sweep --- *)

let fig11 benches =
  print_endline "\n=== Figure 11: SWP coarsening sweep (SWP1/4/8/16) ===";
  line ();
  Printf.printf "%-12s %9s %9s %9s %9s\n" "Benchmark" "SWP" "SWP4" "SWP8" "SWP16";
  line ();
  let acc = Array.make 4 [] in
  List.iter
    (fun cb ->
      let sp = List.map (fun n -> swp_speedup cb ~coarsening:n cb.swp) [ 1; 4; 8; 16 ] in
      List.iteri (fun i s -> acc.(i) <- s :: acc.(i)) sp;
      match sp with
      | [ a; b; c; d ] ->
        Printf.printf "%-12s %9.2f %9.2f %9.2f %9.2f\n" cb.entry.name a b c d
      | _ -> assert false)
    benches;
  line ();
  Printf.printf "%-12s %9.2f %9.2f %9.2f %9.2f\n" "GeoMean" (geomean acc.(0))
    (geomean acc.(1)) (geomean acc.(2)) (geomean acc.(3));
  line ();
  print_endline "expected shape (paper): gains plateau between SWP4 and SWP8."

(* --- ILP statistics (Sec. V-B text) --- *)

let ilpstats benches =
  print_endline "\n=== ILP / II-search statistics (Sec. V-B) ===";
  line ();
  Printf.printf "%-12s %10s %10s %10s %9s %8s %s\n" "Benchmark" "instances"
    "II bound" "achieved" "relax%" "attempts" "solver";
  line ();
  List.iter
    (fun cb ->
      let st = cb.swp.Swp_core.Compile.search_stats in
      Printf.printf "%-12s %10d %10d %10d %9.1f %8d %s\n" cb.entry.name
        (Swp_core.Instances.num_instances cb.swp.Swp_core.Compile.config)
        st.Swp_core.Ii_search.lower_bound st.Swp_core.Ii_search.achieved_ii
        (100.0 *. st.Swp_core.Ii_search.relaxation)
        st.Swp_core.Ii_search.attempts
        (if st.Swp_core.Ii_search.used_exact then "exact ILP" else "heuristic"))
    benches;
  line ();
  print_endline "per-attempt solver effort (candidate II / solver / result):";
  List.iter
    (fun cb ->
      let st = cb.swp.Swp_core.Compile.search_stats in
      Printf.printf "  %s:\n" cb.entry.name;
      List.iter
        (fun (a : Swp_core.Ii_search.attempt) ->
          Format.printf "    %a@." Swp_core.Ii_search.pp_attempt a)
        st.Swp_core.Ii_search.attempt_log)
    benches;
  line ();
  (* exact-vs-heuristic cross check on a small graph *)
  print_endline "exact ILP cross-check (2 SMs, 2-filter multirate graph):";
  let a =
    Kernel.Build.(
      Kernel.make_filter ~name:"A" ~pop:1 ~push:2 [ push pop; push (f 0.0) ])
  in
  let b =
    Kernel.Build.(
      Kernel.make_filter ~name:"B" ~pop:3 ~push:1 [ push (pop +: pop +: pop) ])
  in
  let g = Flatten.flatten (Ast.pipeline "ab" [ Ast.Filter a; Ast.Filter b ]) in
  (match
     ( Swp_core.Compile.compile ~num_sms:2
         ~solver:(Swp_core.Ii_search.Exact 4000) g,
       Swp_core.Compile.compile ~num_sms:2 ~solver:Swp_core.Ii_search.Heuristic g )
   with
  | Ok ce, Ok ch ->
    Printf.printf "  exact II=%d, heuristic II=%d (bound %d)\n"
      ce.Swp_core.Compile.schedule.Swp_core.Swp_schedule.ii
      ch.Swp_core.Compile.schedule.Swp_core.Swp_schedule.ii
      ce.Swp_core.Compile.search_stats.Swp_core.Ii_search.lower_bound
  | Error m, _ | _, Error m -> Printf.printf "  cross-check failed: %s\n" m);
  line ()

(* --- Solver-performance benchmark (BENCH_solver.json) --- *)

(* One II search measured two ways.

   "current" is the production stack: two-tier rationals, sparse tableau
   rows, the instance/dependence expansion derived once per search, and
   (in Exact mode) branch-and-bound warm-started from the heuristic
   schedule.

   "baseline" emulates the solver as it stood before those optimizations:
   the expansion is re-derived at every candidate II, the ILP starts with
   no incumbent, and every LP relaxation runs on the dense reference
   tableau.  The rational fast path cannot be switched off, so baseline
   times are a *lower bound* on the true pre-optimization cost and the
   reported speedups are conservative. *)

type solver_measurement = {
  time_s : float;
  lp_pivots : int;
  bb_nodes : int;
  result_ii : int;  (* -1 when the search failed or was capped *)
  capped : bool;
}

let baseline_search ~solver ~cap_s g cfg ~num_sms =
  let t0 = Unix.gettimeofday () in
  let lb = Swp_core.Mii.lower_bound g cfg ~num_sms in
  let near_bound ii = ii <= lb + (lb / 50) + 2 in
  let pivots = ref 0 and nodes = ref 0 in
  let bump bb =
    match !bb with
    | Some (s : Lp.Branch_bound.stats) ->
      pivots := !pivots + s.lp_pivots;
      nodes := !nodes + s.nodes_explored
    | None -> ()
  in
  let max_ii = (5 * lb) + 1 in
  let rec loop ii =
    if Unix.gettimeofday () -. t0 > cap_s then (-1, true)
    else if ii > max_ii then (-1, false)
    else begin
      let feasible =
        match solver with
        | `Auto budget -> (
          match Swp_core.Heuristic.solve g cfg ~num_sms ~ii with
          | `Schedule _ -> true
          | `Infeasible ->
            if
              Swp_core.Instances.num_instances cfg * num_sms > 96
              || not (near_bound ii)
            then false
            else begin
              let bb = ref None in
              let r =
                Swp_core.Ilp.solve ~node_budget:budget ~time_budget_s:1.0
                  ~stats:bb ~use_reference_lp:true g cfg ~num_sms ~ii
              in
              bump bb;
              match r with `Schedule _ -> true | _ -> false
            end)
        | `Exact budget ->
          (* 60s rather than the paper's 20s so the dense baseline can
             finish its cold solve at the first feasible II instead of
             cascading through budget-exhausted relaxations *)
          let bb = ref None in
          let r =
            Swp_core.Ilp.solve ~node_budget:budget ~time_budget_s:60.0
              ~stats:bb ~use_reference_lp:true g cfg ~num_sms ~ii
          in
          bump bb;
          (match r with `Schedule _ -> true | _ -> false)
      in
      if feasible then (ii, false)
      else
        loop
          (max (ii + 1)
             (int_of_float (Float.round (float_of_int ii *. 1.005))))
    end
  in
  let result_ii, capped = loop lb in
  {
    time_s = Unix.gettimeofday () -. t0;
    lp_pivots = !pivots;
    bb_nodes = !nodes;
    result_ii;
    capped;
  }

let current_search ~solver g cfg ~num_sms =
  let s =
    match solver with
    | `Auto b -> Swp_core.Ii_search.Auto b
    | `Exact b -> Swp_core.Ii_search.Exact b
  in
  let t0 = Unix.gettimeofday () in
  let r = Swp_core.Ii_search.search ~solver:s g cfg ~num_sms in
  let time_s = Unix.gettimeofday () -. t0 in
  match r with
  | Error _ -> { time_s; lp_pivots = 0; bb_nodes = 0; result_ii = -1; capped = false }
  | Ok (sched, st) ->
    let pivots, nodes =
      List.fold_left
        (fun (p, n) (a : Swp_core.Ii_search.attempt) ->
          (p + a.lp_pivots, n + a.bb_nodes))
        (0, 0) st.Swp_core.Ii_search.attempt_log
    in
    {
      time_s;
      lp_pivots = pivots;
      bb_nodes = nodes;
      result_ii = sched.Swp_core.Swp_schedule.ii;
      capped = false;
    }

let solvertime () =
  print_endline "\n=== Solver wall-time: optimized stack vs pre-optimization baseline ===";
  line ();
  Printf.printf "%-18s %12s %12s %9s %10s %10s\n" "Workload" "baseline(s)"
    "current(s)" "speedup" "base piv" "cur piv";
  line ();
  let config_of g =
    let rates = Result.get_ok (Sdf.steady_state g) in
    let prof = Swp_core.Profile.run arch g ~mode:Swp_core.Profile.Coalesced in
    Result.get_ok (Swp_core.Select.select g rates prof)
  in
  (* Auto-mode search on the full suite at 16 SMs, plus Exact-mode
     workloads where the ILP genuinely runs: rate-matched chains whose
     heuristic schedule is feasible right at the II bound (warm start
     turns the cold branch-and-bound search into a verification), and the
     test suite's multirate ab pipeline whose II bound is unreachable by
     any packing — an infeasibility-proving stress where the sparse
     tableau is the whole difference. *)
  let mk_chain n =
    let fs =
      List.init n (fun idx ->
          let nm = Printf.sprintf "F%d" idx in
          Kernel.Build.(
            Kernel.make_filter ~name:nm ~pop:1 ~push:1 [ push (pop +: f 1.0) ]))
    in
    Flatten.flatten (Ast.pipeline "chain" (List.map (fun k -> Ast.Filter k) fs))
  in
  let ab_graph () =
    let a =
      Kernel.Build.(
        Kernel.make_filter ~name:"A" ~pop:1 ~push:2 [ push pop; push (f 0.0) ])
    in
    let b =
      Kernel.Build.(
        Kernel.make_filter ~name:"B" ~pop:3 ~push:1 [ push (pop +: pop +: pop) ])
    in
    Flatten.flatten (Ast.pipeline "ab" [ Ast.Filter a; Ast.Filter b ])
  in
  let workloads =
    List.map
      (fun (e : Benchmarks.Registry.entry) ->
        ( e.name ^ "/auto16",
          Flatten.flatten (e.stream ()),
          `Auto 2000,
          16,
          10.0 ))
      Benchmarks.Registry.all
    @ [
        ("chain8/exact4", mk_chain 8, `Exact 4000, 4, 300.0);
        ("chain12/exact4", mk_chain 12, `Exact 4000, 4, 300.0);
        ("ab/exact2", ab_graph (), `Exact 200, 2, 300.0);
      ]
  in
  let rows =
    List.map
      (fun (name, g, solver, num_sms, cap_s) ->
        let cfg = config_of g in
        let cur = current_search ~solver g cfg ~num_sms in
        let base = baseline_search ~solver ~cap_s g cfg ~num_sms in
        let speedup = base.time_s /. cur.time_s in
        Printf.printf "%-18s %12.4f %12.4f %8.1fx %10d %10d%s\n" name
          base.time_s cur.time_s speedup base.lp_pivots cur.lp_pivots
          (if base.capped then "  (baseline capped)" else "");
        (name, base, cur))
      workloads
  in
  line ();
  let tot f = List.fold_left (fun acc (_, b, c) -> acc +. f b c) 0.0 rows in
  let base_total = tot (fun b _ -> b.time_s)
  and cur_total = tot (fun _ c -> c.time_s) in
  Printf.printf "%-18s %12.4f %12.4f %8.1fx\n" "TOTAL" base_total cur_total
    (base_total /. cur_total);
  let mismatches =
    List.filter
      (fun (_, (b : solver_measurement), (c : solver_measurement)) ->
        (not b.capped) && b.result_ii >= 0 && b.result_ii <> c.result_ii)
      rows
  in
  List.iter
    (fun (name, (b : solver_measurement), (c : solver_measurement)) ->
      Printf.printf "  NOTE %s: baseline II=%d, current II=%d\n" name
        b.result_ii c.result_ii)
    mismatches;
  line ();
  (* machine-readable record, consumed by the acceptance check *)
  let oc = open_out "BENCH_solver.json" in
  let field (m : solver_measurement) =
    Printf.sprintf
      "{\"time_s\": %.6f, \"lp_pivots\": %d, \"bb_nodes\": %d, \"ii\": %d, \
       \"capped\": %b}"
      m.time_s m.lp_pivots m.bb_nodes m.result_ii m.capped
  in
  Printf.fprintf oc
    "{\n\
    \  \"note\": \"baseline emulates the pre-optimization solver stack \
     (dense tableau, cold branch-and-bound, per-II re-expansion); the \
     rational fast path cannot be disabled, so baseline times are a lower \
     bound and speedups conservative; baseline pivot counts only cover \
     relaxations solved to optimality\",\n\
    \  \"workloads\": [\n";
  List.iteri
    (fun i (name, b, c) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"baseline\": %s, \"current\": %s, \
         \"speedup\": %.2f}%s\n"
        name (field b) (field c)
        (b.time_s /. c.time_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"total\": {\"baseline_s\": %.6f, \"current_s\": %.6f, \"speedup\": \
     %.2f}\n\
     }\n"
    base_total cur_total
    (base_total /. cur_total);
  close_out oc;
  Printf.printf "wrote BENCH_solver.json (total speedup %.1fx)\n"
    (base_total /. cur_total)

(* --- Coalescing ablation (Sec. IV-D / Figs. 8-9) --- *)

let coalesce_ablation () =
  print_endline
    "\n=== Ablation: buffer-layout coalescing (warp transactions per firing) ===";
  line ();
  Printf.printf "%-8s %18s %24s\n" "rate" "natural layout" "shuffled layout (eq. 10)";
  line ();
  List.iter
    (fun rate ->
      let nat =
        Gpusim.Coalesce.transactions_per_firing arch ~rate ~threads:512
          ~shuffled:false
      in
      let shf =
        Gpusim.Coalesce.transactions_per_firing arch ~rate ~threads:512
          ~shuffled:true
      in
      Printf.printf "%-8d %12d trans %18d trans  (%.1fx fewer)\n" rate nat shf
        (float_of_int nat /. float_of_int shf))
    [ 1; 2; 4; 8; 16; 64 ];
  line ();
  print_endline "shared-memory bank-conflict degrees (16 banks, Fig. 8):";
  List.iter
    (fun stride ->
      Printf.printf "  stride %-3d -> degree %d\n" stride
        (Gpusim.Coalesce.shared_bank_conflict_degree arch ~tid_to_index:(fun t ->
             t * stride)))
    [ 1; 2; 4; 8; 16 ];
  line ()

(* --- Ablation: SM scaling --- *)

let smsweep () =
  print_endline
    "\n=== Ablation: SWP8 speedup vs. number of SMs (pipeline scalability) ===";
  line ();
  let sm_counts = [ 2; 4; 8; 16 ] in
  Printf.printf "%-12s" "Benchmark";
  List.iter (fun p -> Printf.printf " %8s" (Printf.sprintf "%d SMs" p)) sm_counts;
  print_newline ();
  line ();
  (* the (benchmark, SM count) grid is embarrassingly parallel: each
     cell is one full compile, fanned out over the global pool (serial
     at the default --jobs 1) and printed in grid order afterwards *)
  let names = [ "Bitonic"; "DES"; "FMRadio"; "DCT" ] in
  let cells =
    List.concat_map
      (fun name ->
        let e = Option.get (Benchmarks.Registry.find name) in
        let graph = Flatten.flatten (e.Benchmarks.Registry.stream ()) in
        List.map (fun num_sms -> (name, graph, num_sms)) sm_counts)
      names
  in
  let results =
    Par.Pool.map_auto
      (fun (_, graph, num_sms) ->
        match Swp_core.Compile.compile ~num_sms ~coarsening:8 graph with
        | Error _ -> None
        | Ok c ->
          let gt = Swp_core.Executor.time_swp c in
          (match
             Swp_core.Executor.speedup ~arch ~graph
               ~gpu_cycles_per_steady:gt.Swp_core.Executor.cycles_per_steady ()
           with
          | Ok s -> Some s
          | Error _ -> None))
      cells
  in
  List.iter
    (fun name ->
      Printf.printf "%-12s" name;
      List.iter2
        (fun (n, _, _) r ->
          if n = name then
            match r with
            | Some s -> Printf.printf " %8.2f" s
            | None -> Printf.printf " %8s" "-")
        cells results;
      print_newline ())
    names;
  line ();
  print_endline
    "compute-bound programs scale with SMs until the bus or pipeline depth\n\
     binds; bandwidth-bound ones (DCT) flatten early.";
  line ()

(* --- Pipeline stage breakdown (span tracing) --- *)

(* One traced end-to-end run per benchmark: construct -> flatten ->
   compile -> codegen -> execute with the span sink enabled, then read
   the per-stage wall time out of the recorded forest.  The stage set
   matches the span taxonomy of DESIGN.md; nested compile stages
   (profile/select/ii_search/buffer_layout) are disjoint, so their sum
   plus the top-level stages is the whole pipeline. *)
let pipeline_report () =
  print_endline "\n=== Pipeline stage breakdown (ms, span tracing) ===";
  line ();
  let stage_names =
    [
      "parse"; "flatten"; "profile"; "select"; "ii_search"; "buffer_layout";
      "codegen"; "execute";
    ]
  in
  Printf.printf "%-12s" "Benchmark";
  List.iter (fun s -> Printf.printf " %12s" s) stage_names;
  Printf.printf " %9s\n" "attempts";
  line ();
  Obs.Metrics.reset ();
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      Obs.Trace.reset ();
      Obs.Trace.enable ();
      let stream = Obs.Trace.with_span "parse" (fun () -> e.stream ()) in
      let graph = Flatten.flatten stream in
      (match Swp_core.Compile.compile graph with
      | Error m ->
        Obs.Trace.disable ();
        Printf.printf "%-12s compile failed: %s\n" e.name m
      | Ok c ->
        ignore (Cudagen.Kernel_gen.program c);
        ignore (Swp_core.Executor.time_swp c);
        Obs.Trace.disable ();
        let dur name =
          List.fold_left
            (fun acc (s : Obs.Trace.span) -> acc +. (s.end_us -. s.start_us))
            0.0 (Obs.Trace.find_all name)
        in
        Printf.printf "%-12s" e.name;
        List.iter (fun s -> Printf.printf " %12.3f" (dur s /. 1000.0)) stage_names;
        Printf.printf " %9d\n"
          (List.length (Obs.Trace.find_all "ii_search.attempt"))))
    Benchmarks.Registry.all;
  line ();
  print_endline "aggregate metrics across the suite (counters/gauges/histograms):";
  Format.printf "%a@?" Obs.Metrics.pp_text ();
  line ()

(* --- Differential fuzzing statistics (lib/check) --- *)

(* A fixed-seed fuzz batch through the whole pipeline, reported from the
   metrics registry: how many random programs compile, how many the
   pipeline legitimately rejects, and how fast the three-way oracle
   (interpreter / functional simulator / replay) chews through them. *)
let fuzzstats () =
  print_endline "\n=== Differential fuzzing statistics (fixed seeds) ===";
  line ();
  Obs.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let seeds = 40 in
  let stats, failures = Check.Fuzz.run ~seeds () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-24s %8d\n" "seeds" stats.Check.Fuzz.seeds;
  Printf.printf "%-24s %8d\n" "passed (3-way agree)" stats.Check.Fuzz.passed;
  Printf.printf "%-24s %8d\n" "skipped (rejected)" stats.Check.Fuzz.skipped;
  Printf.printf "%-24s %8d\n" "failed" stats.Check.Fuzz.failed;
  Printf.printf "%-24s %8.1f\n" "seeds/s" (float_of_int seeds /. dt);
  List.iter
    (fun f -> Format.printf "%a@." Check.Fuzz.pp_failure f)
    failures;
  print_endline "metrics registry after the batch:";
  Format.printf "%a@?" Obs.Metrics.pp_text ();
  line ()

(* --- Parallel-compilation wall-clock (BENCH_par.json) --- *)

(* The whole registry compiled at SM counts 2/4/6/8, once serially and
   once fanned out over the domain pool, with the profile cache cleared
   between phases so both do the same work.  Besides the wall-clock
   comparison this doubles as an end-to-end determinism check: the two
   phases must produce identical schedules and byte-identical CUDA.

   On a single-core host the parallel phase cannot win (domains
   time-slice one core and pay the pool's coordination overhead on
   top), so the host's core count is recorded alongside the numbers. *)

let partime ~jobs =
  Printf.printf
    "\n=== Parallel compilation wall-clock (jobs=%d, %d core(s)) ===\n" jobs
    (Domain.recommended_domain_count ());
  line ();
  let sm_counts = [ 2; 4; 6; 8 ] in
  let benches =
    List.map
      (fun (e : Benchmarks.Registry.entry) ->
        (e.name, Flatten.flatten (e.stream ())))
      Benchmarks.Registry.all
  in
  let compile_one (graph, num_sms) =
    match Swp_core.Compile.compile ~num_sms ~coarsening:8 graph with
    | Error m -> failwith m
    | Ok c ->
      (c.Swp_core.Compile.schedule, Cudagen.Kernel_gen.program c)
  in
  let timed jobs tasks =
    Par.Pool.set_jobs jobs;
    Swp_core.Profile.clear_cache ();
    let t0 = Unix.gettimeofday () in
    let out = Par.Pool.map_auto compile_one tasks in
    (Unix.gettimeofday () -. t0, out)
  in
  Printf.printf "%-12s %10s %10s %9s %10s\n" "Benchmark" "serial(s)"
    "par(s)" "speedup" "identical";
  line ();
  let rows =
    List.map
      (fun (name, graph) ->
        let tasks = List.map (fun sms -> (graph, sms)) sm_counts in
        let serial_s, serial_out = timed 1 tasks in
        let par_s, par_out = timed jobs tasks in
        let identical = serial_out = par_out in
        Printf.printf "%-12s %10.3f %10.3f %8.2fx %10s\n" name serial_s par_s
          (serial_s /. par_s)
          (if identical then "yes" else "NO");
        (name, serial_s, par_s, identical))
      benches
  in
  (* headline: the full 32-task grid in one fan-out *)
  let grid =
    List.concat_map
      (fun (_, graph) -> List.map (fun sms -> (graph, sms)) sm_counts)
      benches
  in
  let total_serial_s, _ = timed 1 grid in
  let total_par_s, _ = timed jobs grid in
  Par.Pool.set_jobs 1;
  line ();
  Printf.printf "%-12s %10.3f %10.3f %8.2fx\n" "TOTAL(grid)" total_serial_s
    total_par_s
    (total_serial_s /. total_par_s);
  line ();
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n\
    \  \"note\": \"full registry compiled at num_sms in {2,4,6,8}, serial \
     vs a %d-domain pool; 'identical' asserts byte-identical schedules and \
     CUDA across the two runs; speedups only exceed 1 when the host has \
     spare cores\",\n\
    \  \"host_cores\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"benchmarks\": [\n"
    jobs
    (Domain.recommended_domain_count ())
    jobs;
  List.iteri
    (fun i (name, s, p, identical) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"serial_s\": %.4f, \"parallel_s\": %.4f, \
         \"speedup\": %.2f, \"identical\": %b}%s\n"
        name s p (s /. p) identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"total\": {\"serial_s\": %.4f, \"parallel_s\": %.4f, \"speedup\": \
     %.2f}\n\
     }\n"
    total_serial_s total_par_s
    (total_serial_s /. total_par_s);
  close_out oc;
  Printf.printf "wrote BENCH_par.json (grid speedup %.2fx at jobs=%d)\n"
    (total_serial_s /. total_par_s)
    jobs

(* --- Degradation-ladder quality vs budget (BENCH_resil.json) --- *)

(* Every registry benchmark compiled under a descending ladder of
   work-unit budgets, down to zero.  The compiler must return Ok at
   every rung — the quality column records which rung of the
   exact/refined/heuristic/fallback ladder paid for it, and the achieved II
   quantifies what the budget bought. *)
(* achieved-over-bound gap, in percent of the bound *)
let gap_pct (st : Swp_core.Ii_search.stats) =
  if st.Swp_core.Ii_search.lower_bound <= 0 then 0.0
  else
    100.0
    *. float_of_int
         (st.Swp_core.Ii_search.achieved_ii - st.Swp_core.Ii_search.lower_bound)
    /. float_of_int st.Swp_core.Ii_search.lower_bound

let resil_bench () =
  print_endline "\n=== Quality vs work budget (degradation ladder) ===";
  line ();
  let budgets =
    [ None; Some 100_000; Some 1_000; Some 100; Some 25; Some 10; Some 0 ]
  in
  let bname = function None -> "unlimited" | Some b -> string_of_int b in
  Printf.printf "%-12s %10s %10s %10s %10s %8s %9s\n" "Benchmark" "budget"
    "quality" "II" "bound" "gap%" "attempts";
  line ();
  let rows =
    List.concat_map
      (fun (e : Benchmarks.Registry.entry) ->
        let g = Flatten.flatten (e.stream ()) in
        List.map
          (fun budget ->
            match Swp_core.Compile.compile ?budget ~coarsening:8 g with
            | Error m -> failwith (e.name ^ ": " ^ m)
            | Ok c ->
              let st = c.Swp_core.Compile.search_stats in
              let q =
                Swp_core.Compile.quality_name c.Swp_core.Compile.quality
              in
              Printf.printf "%-12s %10s %10s %10d %10d %8.2f %9d\n" e.name
                (bname budget) q st.Swp_core.Ii_search.achieved_ii
                st.Swp_core.Ii_search.lower_bound
                (gap_pct st) st.Swp_core.Ii_search.attempts;
              (e.name, budget, q, st))
          budgets)
      Benchmarks.Registry.all
  in
  line ();
  let oc = open_out "BENCH_resil.json" in
  Printf.fprintf oc
    "{\n\
    \  \"note\": \"full registry compiled under descending II-search \
     work-unit budgets (null = unlimited); quality records the \
     degradation-ladder rung (exact/refined/heuristic/degraded) and achieved_ii \
     what the budget bought; every rung must compile Ok\",\n\
    \  \"rows\": [\n";
  List.iteri
    (fun i (name, budget, q, (st : Swp_core.Ii_search.stats)) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"budget\": %s, \"quality\": \"%s\", \
         \"achieved_ii\": %d, \"lower_bound\": %d, \"attempts\": %d}%s\n"
        name
        (match budget with None -> "null" | Some b -> string_of_int b)
        q st.Swp_core.Ii_search.achieved_ii st.Swp_core.Ii_search.lower_bound
        st.Swp_core.Ii_search.attempts
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_resil.json (%d rows)\n" (List.length rows);
  (* Schedule-quality view of the same ladder: the achieved-over-bound
     gap per row, the headline metric the portfolio search and LNS
     refinement drive down. *)
  let oc = open_out "BENCH_quality.json" in
  Printf.fprintf oc
    "{\n\
    \  \"note\": \"II quality per benchmark and budget: gap_pct = \
     100*(achieved_ii - lower_bound)/lower_bound against the sharpened \
     combinatorial (and, on small problems, LP/cutting-plane) lower \
     bound; quality records the degradation-ladder rung \
     (exact/refined/heuristic/degraded)\",\n\
    \  \"rows\": [\n";
  List.iteri
    (fun i (name, budget, q, (st : Swp_core.Ii_search.stats)) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"budget\": %s, \"quality\": \"%s\", \
         \"achieved_ii\": %d, \"lower_bound\": %d, \"gap_pct\": %.3f, \
         \"attempts\": %d}%s\n"
        name
        (match budget with None -> "null" | Some b -> string_of_int b)
        q st.Swp_core.Ii_search.achieved_ii st.Swp_core.Ii_search.lower_bound
        (gap_pct st) st.Swp_core.Ii_search.attempts
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_quality.json (%d rows)\n" (List.length rows)

(* --- Serve-cache throughput hot vs cold (BENCH_serve.json) --- *)

(* The whole registry pushed through Cache.Service twice: a cold pass
   against a fresh service with the profile memo cleared (every request
   is a genuine compile) and a sustained hot loop against a warmed
   service (every request canonicalizes, hashes and hits).  The hot
   rate still pays the full keying cost — canonical serialization plus
   MD5 — so the speedup measures what the cache actually buys a
   long-lived daemon, not just a map lookup. *)

let serve_bench () =
  print_endline "\n=== Serve cache throughput (hot vs cold) ===";
  line ();
  let graphs =
    List.map
      (fun (e : Benchmarks.Registry.entry) ->
        (e.name, Flatten.flatten (e.stream ())))
      Benchmarks.Registry.all
  in
  let opts = Cache.Key.default_options in
  let cold_svc = Cache.Service.create () in
  Swp_core.Profile.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let cold_rows =
    List.map
      (fun (name, g) ->
        let t = Unix.gettimeofday () in
        (match Cache.Service.get cold_svc g opts with
        | Ok (_, Cache.Service.Miss) -> ()
        | Ok (_, o) ->
          failwith
            (name ^ ": cold pass was not a miss: "
           ^ Cache.Service.outcome_name o)
        | Error m -> failwith (name ^ ": " ^ m));
        (name, Unix.gettimeofday () -. t))
      graphs
  in
  let cold_s = Unix.gettimeofday () -. t0 in
  let cold_n = List.length graphs in
  let cold_rate = float_of_int cold_n /. cold_s in
  (* hot: warm a fresh service once, then loop hits for >= 0.5s *)
  let svc = Cache.Service.create () in
  List.iter
    (fun (name, g) ->
      match Cache.Service.get svc g opts with
      | Ok _ -> ()
      | Error m -> failwith (name ^ ": " ^ m))
    graphs;
  let t0 = Unix.gettimeofday () in
  let reqs = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.5 do
    List.iter
      (fun (name, g) ->
        (match Cache.Service.get svc g opts with
        | Ok (_, Cache.Service.Hit) -> ()
        | Ok (_, o) ->
          failwith
            (name ^ ": hot pass was not a hit: "
           ^ Cache.Service.outcome_name o)
        | Error m -> failwith (name ^ ": " ^ m));
        incr reqs)
      graphs
  done;
  let hot_s = Unix.gettimeofday () -. t0 in
  let hot_rate = float_of_int !reqs /. hot_s in
  let speedup = hot_rate /. cold_rate in
  Printf.printf "%-12s %10s %12s\n" "Benchmark" "cold(s)" "";
  line ();
  List.iter
    (fun (name, s) -> Printf.printf "%-12s %10.3f\n" name s)
    cold_rows;
  line ();
  Printf.printf "cold: %d compiles in %.3fs = %.1f compiles/s\n" cold_n cold_s
    cold_rate;
  Printf.printf "hot:  %d hits in %.3fs = %.1f compiles/s\n" !reqs hot_s
    hot_rate;
  Printf.printf "hot/cold speedup: %.1fx %s\n" speedup
    (if speedup >= 10.0 then "(>= 10x: OK)" else "(BELOW 10x)");
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"note\": \"full registry through Cache.Service: cold = fresh \
     service + cleared profile memo (every request compiles), hot = \
     sustained hit loop against a warmed service; hot requests still \
     pay canonical serialization + MD5, so the speedup is the \
     end-to-end gain a long-lived serve daemon sees\",\n\
    \  \"cold\": {\"compiles\": %d, \"seconds\": %.4f, \
     \"compiles_per_sec\": %.2f},\n\
    \  \"hot\": {\"requests\": %d, \"seconds\": %.4f, \
     \"compiles_per_sec\": %.2f},\n\
    \  \"speedup\": %.1f,\n\
    \  \"cold_per_benchmark\": [\n"
    cold_n cold_s cold_rate !reqs hot_s hot_rate speedup;
  List.iteri
    (fun i (name, s) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"seconds\": %.4f}%s\n" name s
        (if i = List.length cold_rows - 1 then "" else ","))
    cold_rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (speedup %.1fx)\n" speedup

(* --- Overload behaviour under a 4x-capacity burst (BENCH_harden.json) --- *)

(* The hardening contract under load: a burst of B = 4 * capacity
   distinct compiles against the admission guard must (a) shed exactly
   B - capacity requests, deterministically the *tail* of the arrival
   order, with the same pattern on every identical burst; (b) complete
   every admitted request successfully; (c) keep the queue bounded at
   the configured capacity (peak occupancy never exceeds it); and (d)
   answer sheds in microseconds, not compile-times. *)
let harden_bench () =
  print_endline "\n=== Serve overload (admission control + load shedding) ===";
  line ();
  let max_inflight = 2 and queue_cap = 2 in
  let capacity = max_inflight + queue_cap in
  let burst = 4 * capacity in
  let src i =
    Printf.sprintf
      "filter A pop 0 push 1 { push(1.0); } filter B pop 1 push 1 { \
       push(pop() * %d.0); } filter C pop 1 push 0 { let x = pop(); } \
       pipeline P { add A; add B; add C; }"
      (i + 2)
  in
  let burst_line () =
    let reqs =
      List.init burst (fun i ->
          Printf.sprintf "{\"id\":%d,\"op\":\"compile\",\"src\":\"%s\"}"
            (i + 1) (src i))
    in
    "[" ^ String.concat "," reqs ^ "]"
  in
  let statuses daemon =
    match Cache.Daemon.handle_line daemon (burst_line ()) with
    | `Shutdown _ -> failwith "harden: unexpected shutdown"
    | `Reply s -> (
      match Cache.Protocol.parse s with
      | Obs.Report.Arr docs ->
        List.map
          (fun d ->
            match Obs.Report.member "error" d with
            | Some (Obs.Report.Str e)
              when String.length e >= 10 && String.sub e 0 10 = "overloaded"
              -> "shed"
            | Some (Obs.Report.Str e) -> failwith ("harden: error: " ^ e)
            | _ -> "ok")
          docs
      | _ -> failwith "harden: batch reply is not an array")
  in
  let fresh () =
    let svc = Cache.Service.create () in
    let guard = Cache.Guard.create ~max_inflight ~queue_cap () in
    (Cache.Daemon.create ~guard svc, guard)
  in
  Gc.compact ();
  let heap0 = (Gc.quick_stat ()).Gc.top_heap_words in
  let d1, g1 = fresh () in
  let t0 = Unix.gettimeofday () in
  let run1 = statuses d1 in
  let burst_s = Unix.gettimeofday () -. t0 in
  let d2, _ = fresh () in
  let run2 = statuses d2 in
  let heap1 = (Gc.quick_stat ()).Gc.top_heap_words in
  let occ = Cache.Guard.occupancy g1 in
  let admitted = List.length (List.filter (( = ) "ok") run1) in
  let sheds = List.length (List.filter (( = ) "shed") run1) in
  let tail_shed =
    List.for_all2 (fun i s -> s = if i >= capacity then "shed" else "ok")
      (List.init burst Fun.id) run1
  in
  let deterministic = run1 = run2 in
  if admitted <> capacity then failwith "harden: admitted != capacity";
  if sheds <> burst - capacity then failwith "harden: wrong shed count";
  if not tail_shed then failwith "harden: sheds not at the arrival tail";
  if not deterministic then failwith "harden: shed pattern not reproducible";
  if occ.Cache.Guard.peak_outstanding > capacity then
    failwith "harden: queue exceeded its cap";
  Printf.printf
    "burst %d vs capacity %d: %d admitted (all ok), %d shed (tail, \
     reproducible), peak occupancy %d, %.3fs\n"
    burst capacity admitted sheds occ.Cache.Guard.peak_outstanding burst_s;
  let oc = open_out "BENCH_harden.json" in
  Printf.fprintf oc
    "{\n\
    \  \"note\": \"a 4x-capacity burst of distinct compiles through the \
     production Cache.Daemon batch path: admission is serial in arrival \
     order, so exactly capacity requests are admitted (and all complete) \
     while the tail sheds with deterministic overloaded+retry_after_ms \
     responses; peak queue occupancy never exceeds max_inflight + \
     queue_cap, and heap growth stays bounded by the admitted work, not \
     the burst size\",\n\
    \  \"max_inflight\": %d,\n\
    \  \"queue_cap\": %d,\n\
    \  \"capacity\": %d,\n\
    \  \"burst\": %d,\n\
    \  \"admitted_completed_ok\": %d,\n\
    \  \"shed\": %d,\n\
    \  \"sheds_at_tail\": %b,\n\
    \  \"reproducible\": %b,\n\
    \  \"peak_outstanding\": %d,\n\
    \  \"peak_work\": %d,\n\
    \  \"burst_seconds\": %.4f,\n\
    \  \"top_heap_words_before\": %d,\n\
    \  \"top_heap_words_after\": %d\n\
     }\n"
    max_inflight queue_cap capacity burst admitted sheds tail_shed
    deterministic occ.Cache.Guard.peak_outstanding occ.Cache.Guard.peak_work
    burst_s heap0 heap1;
  close_out oc;
  Printf.printf "wrote BENCH_harden.json (%d/%d shed deterministically)\n"
    sheds burst

(* --- Bechamel micro-benchmarks of the compiler itself --- *)

let micro () =
  print_endline "\n=== Bechamel micro-benchmarks (compiler phases) ===";
  let open Bechamel in
  let g = Flatten.flatten (Benchmarks.Fm_radio.stream ()) in
  let rates = Result.get_ok (Sdf.steady_state g) in
  let prof = Swp_core.Profile.run arch g ~mode:Swp_core.Profile.Coalesced in
  let cfg = Result.get_ok (Swp_core.Select.select g rates prof) in
  let lb = Swp_core.Mii.lower_bound g cfg ~num_sms:16 in
  let tests =
    Test.make_grouped ~name:"phases"
      [
        Test.make ~name:"flatten(FMRadio)"
          (Staged.stage (fun () ->
               ignore (Flatten.flatten (Benchmarks.Fm_radio.stream ()))));
        Test.make ~name:"sdf_rates(FMRadio)"
          (Staged.stage (fun () -> ignore (Sdf.steady_state g)));
        Test.make ~name:"profile(FMRadio)"
          (Staged.stage (fun () ->
               ignore (Swp_core.Profile.run arch g ~mode:Swp_core.Profile.Coalesced)));
        Test.make ~name:"select(FMRadio)"
          (Staged.stage (fun () -> ignore (Swp_core.Select.select g rates prof)));
        Test.make ~name:"deps(FMRadio)"
          (Staged.stage (fun () -> ignore (Swp_core.Instances.deps g cfg)));
        Test.make ~name:"heuristic_schedule(FMRadio)"
          (Staged.stage (fun () ->
               ignore (Swp_core.Heuristic.solve g cfg ~num_sms:16 ~ii:(2 * lb))));
        Test.make ~name:"interp_steady_state(Bitonic)"
          (Staged.stage (fun () ->
               let gb = Flatten.flatten (Benchmarks.Bitonic.stream ()) in
               ignore
                 (Interp.run_steady_states gb
                    ~input:(fun i -> Types.VInt (i mod 97))
                    ~iters:1)));
      ]
  in
  let cfg_b = Benchmark.cfg ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg_b instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name o ->
      match Analyze.OLS.estimates o with
      | Some [ est ] -> Printf.printf "  %-40s %14.0f ns/run\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  (* --jobs N sets the domain-pool width for smsweep, and the parallel
     phase's width for partime (which defaults to 4 either way) *)
  let rec split_jobs = function
    | "--jobs" :: n :: rest ->
      let _, rest = split_jobs rest in
      (Some (int_of_string n), rest)
    | x :: rest ->
      let jobs, rest = split_jobs rest in
      (jobs, x :: rest)
    | [] -> (None, [])
  in
  let jobs_opt, args = split_jobs argv in
  (match jobs_opt with Some j -> Par.Pool.set_jobs j | None -> ());
  let jobs = Option.value jobs_opt ~default:4 in
  let want x = args = [] || List.mem x args in
  let benches =
    if
      List.exists want [ "table1"; "table2"; "fig10"; "fig11"; "ilpstats" ]
    then compile_all ()
    else []
  in
  if want "table1" then table1 benches;
  if want "table2" then table2 benches;
  if want "fig10" then fig10 benches;
  if want "fig11" then fig11 benches;
  if want "ilpstats" then ilpstats benches;
  if want "solvertime" then solvertime ();
  if want "pipeline" then pipeline_report ();
  if want "coalesce" then coalesce_ablation ();
  if want "smsweep" then smsweep ();
  if want "fuzzstats" then fuzzstats ();
  if want "partime" then partime ~jobs;
  if want "resil" then resil_bench ();
  if want "serve" then serve_bench ();
  if want "harden" then harden_bench ();
  if want "micro" then micro ()
