(* Quality-regression gate: compile every registry benchmark at the
   unlimited budget and compare the achieved II against the checked-in
   per-benchmark baseline (quality_baseline.json).  Any achieved II
   strictly above its baseline fails the run; an II strictly below is
   reported so the baseline can be ratcheted down.  Exit status 0 iff no
   benchmark regressed.

   The baseline file is a flat {"baseline": {"Name": ii, ...}} object;
   the reader below handles exactly that shape (the repo carries no JSON
   library, and the gate must not grow a dependency just to read it). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)

(* Pull every "name": <int> pair out of the "baseline" object.  Keys in
   the preamble note contain no colon-integer pairs, but to be safe only
   the text after "baseline" is scanned. *)
let parse_baseline text =
  let start =
    match String.index_opt text '{' with
    | Some _ -> (
      let marker = "\"baseline\"" in
      let rec find i =
        if i + String.length marker > String.length text then
          failwith "quality_baseline.json: no \"baseline\" object"
        else if String.sub text i (String.length marker) = marker then
          i + String.length marker
        else find (i + 1)
      in
      find 0)
    | None -> failwith "quality_baseline.json: not a JSON object"
  in
  let tail = String.sub text start (String.length text - start) in
  let pairs = ref [] in
  let n = String.length tail in
  let i = ref 0 in
  while !i < n do
    if tail.[!i] = '"' then begin
      let close =
        match String.index_from_opt tail (!i + 1) '"' with
        | Some c -> c
        | None -> failwith "quality_baseline.json: unterminated string"
      in
      let key = String.sub tail (!i + 1) (close - !i - 1) in
      let j = ref (close + 1) in
      while !j < n && (tail.[!j] = ' ' || tail.[!j] = '\n') do incr j done;
      if !j < n && tail.[!j] = ':' then begin
        incr j;
        while !j < n && (tail.[!j] = ' ' || tail.[!j] = '\n') do incr j done;
        let k = ref !j in
        while !k < n && tail.[!k] >= '0' && tail.[!k] <= '9' do incr k done;
        if !k > !j then
          pairs := (key, int_of_string (String.sub tail !j (!k - !j))) :: !pairs;
        i := !k
      end
      else i := close + 1
    end
    else incr i
  done;
  List.rev !pairs

let () =
  let baseline_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "quality_baseline.json"
  in
  let baseline = parse_baseline (read_file baseline_path) in
  let failures = ref 0 in
  Printf.printf "%-12s %10s %10s  %s\n" "benchmark" "baseline" "achieved" "";
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let name = e.Benchmarks.Registry.name in
      let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
      match Swp_core.Compile.compile g with
      | Error m ->
        incr failures;
        Printf.printf "%-12s %10s %10s  FAIL compile: %s\n" name "-" "-" m
      | Ok c -> (
        let achieved =
          c.Swp_core.Compile.search_stats.Swp_core.Ii_search.achieved_ii
        in
        match List.assoc_opt name baseline with
        | None ->
          incr failures;
          Printf.printf "%-12s %10s %10d  FAIL no baseline entry\n" name "-"
            achieved
        | Some base when achieved > base ->
          incr failures;
          Printf.printf "%-12s %10d %10d  FAIL regressed by %d\n" name base
            achieved (achieved - base)
        | Some base when achieved < base ->
          Printf.printf
            "%-12s %10d %10d  ok (improved by %d — ratchet the baseline)\n"
            name base achieved (base - achieved)
        | Some base -> Printf.printf "%-12s %10d %10d  ok\n" name base achieved))
    Benchmarks.Registry.all;
  (* Stale baseline entries for benchmarks that no longer exist are also
     an error: they would silently stop gating anything. *)
  List.iter
    (fun (name, _) ->
      if Benchmarks.Registry.find name = None then begin
        incr failures;
        Printf.printf "%-12s %10s %10s  FAIL stale baseline entry\n" name "?"
          "-"
      end)
    baseline;
  if !failures > 0 then begin
    Printf.printf "%d quality regression(s)\n" !failures;
    exit 1
  end
  else print_string "no quality regressions\n"
