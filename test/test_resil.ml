(* The resilience layer: budget tokens, fault injection, the
   fault-containing pool map, the fallback scheduler, and the
   deadline-driven degradation ladder end to end through Compile. *)

let t name f = Alcotest.test_case name `Quick f

let arch = Gpusim.Arch.geforce_8800_gts_512

(* ---- Resil.Budget ---------------------------------------------------- *)

let budget_work () =
  let b = Resil.Budget.create ~label:"t" ~work:5 () in
  Alcotest.(check bool) "fresh token not over" false (Resil.Budget.over b);
  Resil.Budget.charge b 3;
  Alcotest.(check int) "consumed" 3 (Resil.Budget.consumed b);
  Alcotest.(check (option int)) "remaining" (Some 2) (Resil.Budget.remaining b);
  Alcotest.(check bool) "under limit" false (Resil.Budget.over_work b);
  Resil.Budget.charge b 2;
  Alcotest.(check bool) "at limit = exhausted" true (Resil.Budget.over_work b);
  (match Resil.Budget.exhausted_reason b with
  | Some Resil.Budget.Work -> ()
  | _ -> Alcotest.fail "expected Work exhaustion");
  match Resil.Budget.check b with
  | () -> Alcotest.fail "check should raise"
  | exception Resil.Budget.Exhausted { label; reason = Resil.Budget.Work } ->
    Alcotest.(check string) "label" "t" label
  | exception _ -> Alcotest.fail "wrong exception"

let budget_zero () =
  let b = Resil.Budget.create ~work:0 () in
  Alcotest.(check bool) "work 0 is exhausted from the start" true
    (Resil.Budget.over b)

let budget_unlimited () =
  let b = Resil.Budget.unlimited in
  Resil.Budget.charge b 1_000_000;
  Alcotest.(check bool) "unlimited never over" false (Resil.Budget.over b)

let budget_sub () =
  let parent = Resil.Budget.create ~label:"parent" ~work:10 () in
  let child = Resil.Budget.sub ~label:"child" ~work:3 parent in
  Resil.Budget.charge child 3;
  Alcotest.(check bool) "child over its own cap" true
    (Resil.Budget.over_work child);
  Alcotest.(check int) "charges propagate to parent" 3
    (Resil.Budget.consumed parent);
  Alcotest.(check bool) "parent still under" false
    (Resil.Budget.over_work parent);
  (* a second child drains the rest of the parent *)
  let child2 = Resil.Budget.sub ~work:100 parent in
  Resil.Budget.charge child2 7;
  Alcotest.(check bool) "parent exhausted" true (Resil.Budget.over_work parent);
  Alcotest.(check bool) "child exhausted via ancestor" true
    (Resil.Budget.over_work child2)

let budget_wall () =
  let far = Resil.Budget.create ~wall_s:60.0 () in
  Alcotest.(check bool) "future deadline not over" false
    (Resil.Budget.over_wall far);
  let near = Resil.Budget.create ~wall_s:0.0 () in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "passed deadline over" true
    (Resil.Budget.over_wall near);
  (match Resil.Budget.exhausted_reason near with
  | Some Resil.Budget.Wall -> ()
  | _ -> Alcotest.fail "expected Wall exhaustion");
  let no_deadline = Resil.Budget.create ~work:5 () in
  Alcotest.(check bool) "no deadline armed: never wall-over" false
    (Resil.Budget.over_wall no_deadline)

(* ---- Resil.Inject ---------------------------------------------------- *)

let inject_deterministic () =
  Fun.protect ~finally:Resil.Inject.disarm @@ fun () ->
  Resil.Inject.arm [ { Resil.Inject.site = "a"; at = 2 } ];
  Alcotest.(check bool) "armed" true (Resil.Inject.armed ());
  Alcotest.(check bool) "first hit does not fire" false (Resil.Inject.hit "a");
  Alcotest.(check bool) "unmatched site never fires" false
    (Resil.Inject.hit "b");
  Alcotest.(check bool) "second hit fires" true (Resil.Inject.hit "a");
  Alcotest.(check bool) "third hit does not re-fire" false
    (Resil.Inject.hit "a");
  Alcotest.(check (list (pair string int)))
    "hit counters" [ ("a", 3); ("b", 1) ] (Resil.Inject.hits ());
  (* re-arming resets the counters: the same sequence fires again *)
  Resil.Inject.arm [ { Resil.Inject.site = "a"; at = 2 } ];
  Alcotest.(check bool) "reset: first hit quiet" false (Resil.Inject.hit "a");
  Alcotest.(check bool) "reset: second hit fires" true (Resil.Inject.hit "a")

let inject_fire_and_disarm () =
  Fun.protect ~finally:Resil.Inject.disarm @@ fun () ->
  Resil.Inject.arm [ { Resil.Inject.site = "s"; at = 1 } ];
  (match Resil.Inject.fire "s" with
  | () -> Alcotest.fail "fire should raise"
  | exception Resil.Inject.Injected site ->
    Alcotest.(check string) "fired site" "s" site);
  Resil.Inject.disarm ();
  Alcotest.(check bool) "disarmed" false (Resil.Inject.armed ());
  Resil.Inject.fire "s";
  Alcotest.(check bool) "disarmed hit is a no-op" false (Resil.Inject.hit "s")

(* ---- Par.Pool.map_result --------------------------------------------- *)

let pool_containment () =
  Par.Pool.with_pool ~domains:3 @@ fun pool ->
  let f x = if x mod 3 = 0 then failwith (Printf.sprintf "boom%d" x) else x * 2 in
  let results = Par.Pool.map_result pool f [ 1; 2; 3; 4; 5; 6 ] in
  let describe = function
    | Ok v -> Printf.sprintf "ok:%d" v
    | Error { Par.Pool.index; exn = Failure m; _ } ->
      Printf.sprintf "fail:%d:%s" index m
    | Error _ -> "fail:?"
  in
  Alcotest.(check (list string))
    "per-element outcomes in submission order"
    [ "ok:2"; "ok:4"; "fail:2:boom3"; "ok:8"; "ok:10"; "fail:5:boom6" ]
    (List.map describe results)

let pool_containment_serial () =
  Par.Pool.with_pool ~domains:1 @@ fun pool ->
  let f x = if x = 2 then raise Exit else x in
  match Par.Pool.map_result pool f [ 1; 2; 3 ] with
  | [ Ok 1; Error { Par.Pool.exn = Exit; index = 1; _ }; Ok 3 ] -> ()
  | _ -> Alcotest.fail "serial containment shape"

let pool_cancellation () =
  Par.Pool.with_pool ~domains:1 @@ fun pool ->
  (* should_stop flips true after two tasks have run *)
  let ran = ref 0 in
  let results =
    Par.Pool.map_result pool
      ~should_stop:(fun () -> !ran >= 2)
      (fun x ->
        incr ran;
        x)
      [ 1; 2; 3; 4 ]
  in
  let cancelled =
    List.filter
      (function
        | Error { Par.Pool.exn = Par.Pool.Cancelled; _ } -> true | _ -> false)
      results
  in
  Alcotest.(check int) "two tasks ran" 2 !ran;
  Alcotest.(check int) "two tasks cancelled" 2 (List.length cancelled)

(* ---- Fallback -------------------------------------------------------- *)

let config_of g =
  let rates = Result.get_ok (Streamit.Sdf.steady_state g) in
  let profile = Swp_core.Profile.run arch g ~mode:Swp_core.Profile.Coalesced in
  Result.get_ok (Swp_core.Select.select g rates profile)

let fallback_all_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = Streamit.Flatten.flatten (e.stream ()) in
      let cfg = config_of g in
      match Swp_core.Fallback.schedule g cfg ~num_sms:16 with
      | Error m -> Alcotest.failf "%s: fallback failed: %s" e.name m
      | Ok s ->
        Alcotest.(check int)
          (e.name ^ ": rewrapped to the real SM count")
          16 s.Swp_core.Swp_schedule.num_sms;
        (match Swp_core.Swp_schedule.validate g s with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: fallback invalid: %s" e.name m);
        Alcotest.(check bool)
          (e.name ^ ": II at most the relaxed bound")
          true
          (s.Swp_core.Swp_schedule.ii <= Swp_core.Fallback.relaxed_ii cfg))
    Benchmarks.Registry.all

(* ---- compile under near-zero budgets --------------------------------- *)

let compile_budget budget (e : Benchmarks.Registry.entry) =
  let g = Streamit.Flatten.flatten (e.stream ()) in
  match Swp_core.Compile.compile ~budget g with
  | Error m -> Alcotest.failf "%s (budget %d): %s" e.name budget m
  | Ok c ->
    (match
       Swp_core.Swp_schedule.validate c.Swp_core.Compile.graph
         c.Swp_core.Compile.schedule
     with
    | Ok () -> ()
    | Error m ->
      Alcotest.failf "%s (budget %d): invalid schedule: %s" e.name budget m);
    c

let budget_zero_all_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let c = compile_budget 0 e in
      Alcotest.(check bool)
        (e.name ^ ": budget 0 degrades")
        true
        (c.Swp_core.Compile.quality = Swp_core.Compile.Degraded))
    Benchmarks.Registry.all

let budget_one_all_benchmarks () =
  (* one work unit admits at most one committed attempt; whatever rung
     the ladder lands on, the compile must succeed and validate *)
  List.iter
    (fun (e : Benchmarks.Registry.entry) -> ignore (compile_budget 1 e))
    Benchmarks.Registry.all

let on_budget_fail () =
  let e = Option.get (Benchmarks.Registry.find "FMRadio") in
  let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  match Swp_core.Compile.compile ~budget:0 ~on_budget:`Fail g with
  | Ok _ -> Alcotest.fail "on_budget:`Fail must not degrade"
  | Error m ->
    Alcotest.(check bool)
      "structured budget diagnostic" true
      (String.length m > 0)

let compile_rejects_bad_args () =
  let e = Option.get (Benchmarks.Registry.find "Bitonic") in
  let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  (match Swp_core.Compile.compile ~coarsening:0 g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "coarsening 0 must be rejected");
  (match Swp_core.Compile.compile ~num_sms:0 g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "num_sms 0 must be rejected");
  match Swp_core.Compile.compile ~budget:(-1) g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative budget must be rejected"

(* ---- fault injection through the pipeline ----------------------------- *)

let compile_under_fault site at =
  let e = Option.get (Benchmarks.Registry.find "FMRadio") in
  let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  Resil.Inject.arm [ { Resil.Inject.site; at } ];
  Fun.protect ~finally:Resil.Inject.disarm (fun () ->
      Swp_core.Compile.compile g)

let fault_in_search_degrades () =
  match compile_under_fault "stage.search" 1 with
  | Error m -> Alcotest.failf "search fault should degrade, got error: %s" m
  | Ok c ->
    Alcotest.(check bool) "degraded quality" true
      (c.Swp_core.Compile.quality = Swp_core.Compile.Degraded);
    (match
       Swp_core.Swp_schedule.validate c.Swp_core.Compile.graph
         c.Swp_core.Compile.schedule
     with
    | Ok () -> ()
    | Error m -> Alcotest.failf "degraded schedule invalid: %s" m)

let fault_in_profile_diagnosed () =
  match compile_under_fault "stage.profile" 1 with
  | Ok _ -> Alcotest.fail "profile fault cannot be degraded around"
  | Error m ->
    Alcotest.(check bool) "structured diagnostic names the site" true
      (String.length m > 0)

let fault_in_layout_diagnosed () =
  match compile_under_fault "stage.layout" 1 with
  | Ok _ -> Alcotest.fail "layout fault must be diagnosed"
  | Error _ -> ()

let fault_in_attempt_survives () =
  (* a soft fault in one II attempt forces a relax-and-retry, not a
     failure: the search continues at the next candidate *)
  match compile_under_fault "ii_search.attempt" 1 with
  | Error m -> Alcotest.failf "attempt fault should be survivable: %s" m
  | Ok c ->
    let log =
      c.Swp_core.Compile.search_stats.Swp_core.Ii_search.attempt_log
    in
    (match log with
    | first :: _ ->
      Alcotest.(check bool) "first attempt marked budget-hit" true
        first.Swp_core.Ii_search.budget_hit;
      Alcotest.(check bool) "first attempt infeasible" false
        first.Swp_core.Ii_search.feasible
    | [] -> Alcotest.fail "empty attempt log");
    Alcotest.(check bool) "still full quality" true
      (c.Swp_core.Compile.quality <> Swp_core.Compile.Degraded)

(* ---- fault-fuzz campaign (library level) ------------------------------ *)

let fault_fuzz_campaign () =
  let stats, failures = Check.Fault_fuzz.run ~base_seed:1 ~seeds:30 () in
  List.iter
    (fun f -> Format.eprintf "%a@." Check.Fault_fuzz.pp_failure f)
    failures;
  Alcotest.(check int) "no crashes, no invalid schedules" 0
    stats.Check.Fault_fuzz.failed;
  Alcotest.(check int)
    "every seed classified" stats.Check.Fault_fuzz.seeds
    (stats.Check.Fault_fuzz.full + stats.Check.Fault_fuzz.degraded
    + stats.Check.Fault_fuzz.diagnosed + stats.Check.Fault_fuzz.skipped)

let suite =
  [
    t "budget: work-unit accounting and exhaustion" budget_work;
    t "budget: zero allotment is exhausted immediately" budget_zero;
    t "budget: unlimited token never exhausts" budget_unlimited;
    t "budget: sub-token charges propagate to ancestors" budget_sub;
    t "budget: wall-clock guard is armed only on request" budget_wall;
    t "inject: at-th hit fires deterministically" inject_deterministic;
    t "inject: fire raises, disarm silences" inject_fire_and_disarm;
    t "pool: map_result contains worker faults" pool_containment;
    t "pool: map_result contains faults on the serial path"
      pool_containment_serial;
    t "pool: should_stop cancels unstarted tasks" pool_cancellation;
    t "fallback: validates on every registry benchmark"
      fallback_all_benchmarks;
    t "compile: budget 0 degrades but validates on every benchmark"
      budget_zero_all_benchmarks;
    t "compile: budget 1 compiles validated on every benchmark"
      budget_one_all_benchmarks;
    t "compile: on_budget=`Fail reports instead of degrading" on_budget_fail;
    t "compile: invalid arguments become structured errors"
      compile_rejects_bad_args;
    t "fault: search-stage fault degrades to a valid schedule"
      fault_in_search_degrades;
    t "fault: profile-stage fault is a structured diagnostic"
      fault_in_profile_diagnosed;
    t "fault: layout-stage fault is a structured diagnostic"
      fault_in_layout_diagnosed;
    t "fault: II-attempt fault forces relax-and-retry, not failure"
      fault_in_attempt_survives;
    t "fault fuzz: 30-seed campaign is crash-free" fault_fuzz_campaign;
  ]
