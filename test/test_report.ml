(* Flight-recorder report: the provenance record must explain the
   achieved II end-to-end — which bound was binding, which portfolio arm
   won, where the work units went — and must serialize byte-identically
   whatever --jobs is.  The degraded rungs must carry their rationale
   (budget exhaustion site / fault site / fallback seed II). *)

open Swp_core
module J = Obs.Report

let t name f = Alcotest.test_case name `Quick f

let compile_bench ?budget name =
  let e =
    match Benchmarks.Registry.find name with
    | Some e -> e
    | None -> Alcotest.failf "unknown benchmark %s" name
  in
  Profile.clear_cache ();
  let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  match Compile.compile ?budget g with
  | Ok c -> c
  | Error m -> Alcotest.failf "%s failed to compile: %s" name m

let with_jobs n f =
  Par.Pool.set_jobs n;
  Fun.protect f ~finally:(fun () ->
      Par.Pool.set_jobs 1;
      Profile.clear_cache ())

let get_int doc p =
  match J.path p doc with
  | Some (J.Int v) -> v
  | _ -> Alcotest.failf "report field %s: not an Int" (String.concat "." p)

let get_str doc p =
  match J.path p doc with
  | Some (J.Str v) -> v
  | _ -> Alcotest.failf "report field %s: not a Str" (String.concat "." p)

let get_arr doc p =
  match J.path p doc with
  | Some (J.Arr v) -> v
  | _ -> Alcotest.failf "report field %s: not an Arr" (String.concat "." p)

let report_tests =
  [
    t "DES report explains the achieved II end-to-end" (fun () ->
        let c = compile_bench "DES" in
        let r = Report.assemble ~program:"DES" c in
        let doc = Report.to_doc r in
        let st = c.Compile.search_stats in
        (* The II story: achieved, bound, gap and the binding component. *)
        let achieved = get_int doc [ "ii"; "achieved" ] in
        let lb = get_int doc [ "ii"; "lower_bound" ] in
        Alcotest.(check int) "achieved matches stats"
          st.Ii_search.achieved_ii achieved;
        Alcotest.(check int) "gap = achieved - bound" (achieved - lb)
          (get_int doc [ "ii"; "gap" ]);
        Alcotest.(check int) "final bound component = lower bound" lb
          (get_int doc [ "ii"; "bounds"; "final" ]);
        let binding = get_str doc [ "ii"; "bounds"; "binding" ] in
        Alcotest.(check bool)
          ("binding bound is attributed: " ^ binding)
          true
          (List.mem binding
             [ "res_mii"; "res_mii_sharp"; "rec_mii"; "no_wrap"; "lp"; "floor" ]);
        (* The binding name must actually point at a component equal to
           the final bound — the attribution is checkable, not a label. *)
        let component = function
          | "res_mii" -> st.Ii_search.bounds.Mii.res_classic
          | "res_mii_sharp" -> st.Ii_search.bounds.Mii.res_sharp
          | "rec_mii" -> st.Ii_search.bounds.Mii.recurrence
          | "no_wrap" -> st.Ii_search.bounds.Mii.no_wrap
          | "lp" -> Option.value st.Ii_search.bounds.Mii.lp ~default:(-1)
          | _ -> st.Ii_search.bounds.Mii.final
        in
        Alcotest.(check int) "binding component equals final bound" lb
          (component binding);
        (* The search story: every committed attempt with its arm; the
           achieved II must come from a feasible attempt. *)
        let attempts = get_arr doc [ "search"; "attempt_log" ] in
        Alcotest.(check int) "attempt count matches"
          st.Ii_search.attempts (List.length attempts);
        let feasible_iis =
          List.filter_map
            (fun a ->
              match (J.member "feasible" a, J.member "ii" a) with
              | Some (J.Bool true), Some (J.Int ii) -> Some ii
              | _ -> None)
            attempts
        in
        Alcotest.(check bool) "achieved II was a feasible attempt" true
          (List.mem achieved feasible_iis);
        let arms =
          List.filter_map
            (fun a ->
              match (J.member "feasible" a, J.member "arm" a) with
              | Some (J.Bool true), Some (J.Str arm) -> Some arm
              | _ -> None)
            attempts
        in
        Alcotest.(check bool) "a winning arm is attributed" true
          (List.exists (fun a -> a <> "none") arms);
        (* The work story: stage spends in pipeline order, summing to
           the root ledger total. *)
        let stages = get_arr doc [ "stages" ] in
        Alcotest.(check (list string))
          "stages in pipeline order"
          [ "profile"; "select"; "search"; "layout" ]
          (List.map
             (fun s ->
               match J.member "stage" s with
               | Some (J.Str n) -> n
               | _ -> "?")
             stages);
        let works =
          List.map
            (fun s ->
              match J.member "work" s with Some (J.Int w) -> w | _ -> -1)
            stages
        in
        Alcotest.(check bool) "every stage charged >= 0" true
          (List.for_all (fun w -> w >= 0) works);
        Alcotest.(check int) "stage work sums to ledger total"
          (get_int doc [ "ledger_total" ])
          (List.fold_left ( + ) 0 works);
        Alcotest.(check int) "prov agrees with report"
          c.Compile.prov.Compile.ledger_total
          (get_int doc [ "ledger_total" ]);
        (* The rung story: an unbudgeted compile completes. *)
        Alcotest.(check string) "rationale" "completed"
          (get_str doc [ "rationale" ]);
        (* The sweep story: the full scoreboard, with the winner's
           normalised II among the feasible candidates. *)
        let scoreboard = get_arr doc [ "selection"; "scoreboard" ] in
        Alcotest.(check bool) "scoreboard is populated" true
          (scoreboard <> []);
        let feas_norms =
          List.filter_map
            (fun cand ->
              match J.member "norm_ii" cand with
              | Some (J.Float v) -> Some v
              | _ -> None)
            scoreboard
        in
        Alcotest.(check bool) "some candidate was feasible" true
          (feas_norms <> []);
        let winner = c.Compile.config.Select.norm_ii in
        Alcotest.(check bool) "winner is the best feasible candidate" true
          (List.for_all (fun v -> v >= winner) feas_norms
          && List.mem winner feas_norms));
    t "report serialization: serial == --jobs 4, byte-identical" (fun () ->
        let render () =
          let c = compile_bench "DES" in
          ( Report.to_json (Report.assemble ~program:"DES" c),
            Report.schedule_signature c )
        in
        let s_json, s_sig = with_jobs 1 render in
        let p_json, p_sig = with_jobs 4 render in
        Alcotest.(check string) "signature identical" s_sig p_sig;
        Alcotest.(check string) "report JSON byte-identical" s_json p_json);
    t "timings are opt-in and excluded by default" (fun () ->
        let c = compile_bench "Bitonic" in
        let r = Report.assemble c in
        let plain = Report.to_json r in
        let timed = Report.to_json ~timings:true r in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "no wall_s in default form" false
          (contains plain "wall_s");
        Alcotest.(check bool) "wall_s in timed form" true
          (contains timed "wall_s");
        Alcotest.(check bool) "total_wall_s in timed form" true
          (contains timed "total_wall_s"));
    t "degraded compile reports the rung rationale and seed II" (fun () ->
        (* 25 work units are not enough for BitonicRec's search: the
           fallback scheduler takes over and the report must say why. *)
        let c = compile_bench ~budget:25 "BitonicRec" in
        Alcotest.(check string) "quality rung" "degraded"
          (Compile.quality_name c.Compile.quality);
        let doc = Report.to_doc (Report.assemble ~program:"BitonicRec" c) in
        Alcotest.(check string) "quality in report" "degraded"
          (get_str doc [ "quality" ]);
        let rationale = get_str doc [ "rationale" ] in
        Alcotest.(check bool)
          ("degradation rationale attributed: " ^ rationale)
          true
          (rationale <> "completed");
        (match c.Compile.prov.Compile.fallback_seed_ii with
        | Some seed ->
          Alcotest.(check int) "seed II surfaced" seed
            (get_int doc [ "fallback_seed_ii" ])
        | None ->
          Alcotest.(check bool) "fallback_seed_ii is null" true
            (J.path [ "fallback_seed_ii" ] doc = Some J.Null));
        (* pp_human renders every rung without raising. *)
        ignore
          (Format.asprintf "%a" Report.pp_human
             (Report.assemble ~program:"BitonicRec" c)));
  ]

(* ---- structured event log ------------------------------------------- *)

let log_tests =
  [
    t "compile emits the flight-recorder event stream" (fun () ->
        Obs.Log.reset ();
        Obs.Log.enable ();
        Fun.protect ~finally:Obs.Log.disable (fun () ->
            ignore (compile_bench "FMRadio"));
        let events = Obs.Log.events () in
        List.iter
          (fun name ->
            Alcotest.(check bool) (name ^ " event present") true
              (List.exists (fun (e : Obs.Log.event) -> e.Obs.Log.name = name)
                 events))
          [
            "ii_search.bounds"; "ii_search.commit"; "ii_search.done";
            "select.config"; "compile.finish";
          ];
        (* seq numbers must be strictly increasing after the merge *)
        let seqs = List.map (fun (e : Obs.Log.event) -> e.Obs.Log.seq) events in
        Alcotest.(check bool) "merged stream ordered by seq" true
          (List.sort compare seqs = seqs);
        let jsonl = Obs.Log.to_json_lines ~timestamps:false () in
        Alcotest.(check bool) "jsonl: one line per event" true
          (String.split_on_char '\n' (String.trim jsonl)
           |> List.length = List.length events));
    t "event log is deterministic without timestamps" (fun () ->
        let capture jobs =
          with_jobs jobs (fun () ->
              Obs.Log.reset ();
              Obs.Log.enable ();
              Fun.protect ~finally:Obs.Log.disable (fun () ->
                  ignore (compile_bench "Bitonic"));
              Obs.Log.to_json_lines ~timestamps:false ())
        in
        let serial = capture 1 in
        let par = capture 4 in
        Alcotest.(check string) "jobs 4 == serial" serial par;
        Obs.Log.reset ());
    t "disabled log records nothing" (fun () ->
        Obs.Log.reset ();
        Obs.Log.event "should.not.appear";
        Alcotest.(check int) "no events" 0 (List.length (Obs.Log.events ())));
  ]

(* ---- provenance header in generated CUDA ---------------------------- *)

let header_tests =
  [
    t "CUDA artifact carries its provenance header" (fun () ->
        let c = compile_bench "Bitonic" in
        let cuda = Cudagen.Kernel_gen.program c in
        let sig_ = Report.schedule_signature c in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "header block first" true
          (String.length cuda > 2 && String.sub cuda 0 2 = "/*");
        Alcotest.(check bool) "signature embedded" true (contains cuda sig_);
        Alcotest.(check bool) "quality embedded" true
          (contains cuda
             ("quality: " ^ Compile.quality_name c.Compile.quality)));
  ]

let suite = report_tests @ log_tests @ header_tests
