(* Assert that a captured CLI output file contains each expected
   substring — the dune glue for the --metrics smoke rules: capture a
   subcommand's stdout, then require the metrics dump (non-empty, with
   the pipeline counters actually bumped) to be present. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  if Array.length Sys.argv < 3 then begin
    prerr_endline "usage: output_check FILE SUBSTRING [SUBSTRING...]";
    exit 2
  end;
  let file = Sys.argv.(1) in
  let text = read_file file in
  let missing = ref [] in
  for i = 2 to Array.length Sys.argv - 1 do
    if not (contains text Sys.argv.(i)) then
      missing := Sys.argv.(i) :: !missing
  done;
  match !missing with
  | [] -> ()
  | ms ->
    Printf.eprintf "%s: expected output missing: %s\n" file
      (String.concat ", " (List.map (Printf.sprintf "%S") (List.rev ms)));
    exit 1
