(* Parallel-compilation determinism: for every registry benchmark the
   pool-backed pipeline (profile sweep, config selection, speculative II
   probing) at --jobs 4 must produce byte-identical results to the
   serial pipeline — same schedule, same buffer layout, same generated
   CUDA.  Every benchmark is additionally pinned against its golden
   CUDA fixture (fixtures/codegen/, shared with the dune diff rules) so
   that an accidental (even deterministic) change to the generator or
   the scheduler shows up as a diff. *)

let t name f = Alcotest.test_case name `Quick f

let compile_bench (e : Benchmarks.Registry.entry) =
  let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  match Swp_core.Compile.compile g with
  | Ok c -> c
  | Error m -> Alcotest.failf "%s failed to compile: %s" e.Benchmarks.Registry.name m

type snapshot = {
  schedule : Swp_core.Swp_schedule.t;
  sizing : Swp_core.Buffer_layout.sizing;
  cuda : string;
}

let snapshot e =
  (* The profile cache would otherwise hand the second compilation the
     first one's results, hiding any nondeterminism in the parallel
     sweep itself. *)
  Swp_core.Profile.clear_cache ();
  let c = compile_bench e in
  {
    schedule = c.Swp_core.Compile.schedule;
    sizing = c.Swp_core.Compile.sizing;
    cuda = Cudagen.Kernel_gen.program c;
  }

let with_jobs n f =
  Par.Pool.set_jobs n;
  Fun.protect f ~finally:(fun () ->
      Par.Pool.set_jobs 1;
      Swp_core.Profile.clear_cache ())

let check_equal name (serial : snapshot) (par : snapshot) =
  Alcotest.(check int)
    (name ^ ": II") serial.schedule.Swp_core.Swp_schedule.ii
    par.schedule.Swp_core.Swp_schedule.ii;
  Alcotest.(check bool)
    (name ^ ": schedule entries identical") true
    (serial.schedule = par.schedule);
  Alcotest.(check int)
    (name ^ ": total buffer bytes")
    serial.sizing.Swp_core.Buffer_layout.total_bytes
    par.sizing.Swp_core.Buffer_layout.total_bytes;
  Alcotest.(check bool)
    (name ^ ": per-edge buffer layout identical") true
    (serial.sizing.Swp_core.Buffer_layout.per_edge
    = par.sizing.Swp_core.Buffer_layout.per_edge);
  Alcotest.(check bool)
    (name ^ ": generated CUDA byte-identical") true
    (String.equal serial.cuda par.cuda)

let serial_vs_parallel (e : Benchmarks.Registry.entry) =
  let name = e.Benchmarks.Registry.name in
  t (name ^ ": --jobs 4 == serial") (fun () ->
      let serial = with_jobs 1 (fun () -> snapshot e) in
      let par = with_jobs 4 (fun () -> snapshot e) in
      check_equal name serial par)

(* ---- budgeted determinism ------------------------------------------- *)

(* Work-unit budgets are counted in solver work (pivots + nodes), never
   wall time, so a budget-limited compile must cut off at exactly the
   same attempt serially and under --jobs 4: identical schedule, sizing,
   CUDA, quality, and byte-identical attempt log. *)

let budgeted_snapshot e ~budget =
  Swp_core.Profile.clear_cache ();
  let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  match Swp_core.Compile.compile ~budget g with
  | Error m ->
    Alcotest.failf "%s failed to compile under budget %d: %s"
      e.Benchmarks.Registry.name budget m
  | Ok c ->
    ( {
        schedule = c.Swp_core.Compile.schedule;
        sizing = c.Swp_core.Compile.sizing;
        cuda = Cudagen.Kernel_gen.program c;
      },
      Swp_core.Ii_search.log_signature c.Swp_core.Compile.search_stats,
      c.Swp_core.Compile.quality )

let budgeted name budget =
  t (Printf.sprintf "%s: budget %d, --jobs 4 == serial" name budget)
    (fun () ->
      let e =
        match Benchmarks.Registry.find name with
        | Some e -> e
        | None -> Alcotest.failf "unknown benchmark %s" name
      in
      let s_snap, s_sig, s_q =
        with_jobs 1 (fun () -> budgeted_snapshot e ~budget)
      in
      let p_snap, p_sig, p_q =
        with_jobs 4 (fun () -> budgeted_snapshot e ~budget)
      in
      check_equal name s_snap p_snap;
      Alcotest.(check string) (name ^ ": attempt log signature") s_sig p_sig;
      Alcotest.(check string)
        (name ^ ": quality")
        (Swp_core.Compile.quality_name s_q)
        (Swp_core.Compile.quality_name p_q))

(* 25 units degrade BitonicRec (its search needs more committed
   attempts than that, and the seeded fallback ramp must also stay
   deterministic); 100 let DES finish as a refined schedule with the
   ledger active, so portfolio arm racing AND LNS probes are both
   exercised under work accounting — every rung of the ladder stays
   deterministic. *)
let budgeted_cases = [ ("BitonicRec", 25); ("DES", 100) ]

(* ---- golden CUDA fixtures ------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)

let fixture_benchmarks =
  [
    "FMRadio"; "DES"; "Bitonic"; "BitonicRec"; "DCT"; "FFT"; "Filterbank";
    "MatrixMult";
  ]

let fixture_path name =
  Filename.concat (Filename.concat "fixtures" "codegen") (name ^ ".cu")

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let golden name =
  t (name ^ ": CUDA matches golden fixture") (fun () ->
      let e =
        match Benchmarks.Registry.find name with
        | Some e -> e
        | None -> Alcotest.failf "unknown benchmark %s" name
      in
      let got = with_jobs 4 (fun () -> snapshot e) in
      let want = read_file (fixture_path name) in
      if not (String.equal got.cuda want) then begin
        let i = first_diff got.cuda want in
        let ctx s =
          String.sub s (max 0 (i - 40))
            (min 80 (String.length s - max 0 (i - 40)))
        in
        Alcotest.failf
          "%s: generated CUDA diverges from fixture at byte %d\n\
           fixture:   ...%s...\n\
           generated: ...%s..."
          name i (ctx want) (ctx got.cuda)
      end)

let suite =
  List.map serial_vs_parallel Benchmarks.Registry.all
  @ List.map (fun (n, b) -> budgeted n b) budgeted_cases
  @ List.map golden fixture_benchmarks
