(* Tests for the paper's core contribution: profiling, configuration
   selection, instance/dependence expansion, MII bounds, the ILP and
   heuristic schedulers (cross-validated), buffer layout and the
   end-to-end compile pipeline. *)

open Streamit
open Swp_core

let t name f = Alcotest.test_case name `Quick f
let arch = Gpusim.Arch.geforce_8800_gts_512

let ab_graph () =
  let a =
    Kernel.Build.(
      Kernel.make_filter ~name:"A" ~pop:1 ~push:2
        [ let_ "x" pop; push (v "x"); push (v "x" *: f 2.0) ])
  in
  let b =
    Kernel.Build.(
      Kernel.make_filter ~name:"B" ~pop:3 ~push:1 [ push (pop +: pop +: pop) ])
  in
  Flatten.flatten (Ast.pipeline "ab" [ Ast.Filter a; Ast.Filter b ])

let compiled_ab () = Result.get_ok (Compile.compile (ab_graph ()))

(* --- Profile --- *)

let profile_tests =
  [
    t "profiles full option grid" (fun () ->
        let g = ab_graph () in
        let d = Profile.run arch g ~mode:Profile.Coalesced in
        Alcotest.(check int) "nodes" 2 (Array.length d.Profile.runtimes);
        Alcotest.(check int) "regs" 4 (Array.length d.Profile.runtimes.(0));
        Alcotest.(check int) "threads" 4 (Array.length d.Profile.runtimes.(0).(0)));
    t "infeasible configurations are infinite (Fig. 6 line 5)" (fun () ->
        let g = ab_graph () in
        let d = Profile.run arch g ~mode:Profile.Coalesced in
        (* 64 registers with 512 threads exceeds the register file *)
        Alcotest.(check bool) "inf" true
          (Profile.time_of d ~node:0 ~regs:64 ~threads:512 = infinity);
        Alcotest.(check bool) "finite" true
          (Profile.time_of d ~node:0 ~regs:16 ~threads:512 < infinity));
    t "numfirings divisible by all thread counts" (fun () ->
        let g = ab_graph () in
        let d = Profile.run arch g ~mode:Profile.Coalesced in
        List.iter
          (fun th ->
            Alcotest.(check int) "divisible" 0 (d.Profile.numfirings mod th))
          d.Profile.thread_options);
    t "non-coalesced mode profiles slower or equal" (fun () ->
        let g = Flatten.flatten (Benchmarks.Matrix_mult.stream ()) in
        let dc = Profile.run arch g ~mode:Profile.Coalesced in
        let dn = Profile.run arch g ~mode:Profile.Non_coalesced in
        let any_slower = ref false in
        for v = 0 to Graph.num_nodes g - 1 do
          let c = Profile.time_of dc ~node:v ~regs:16 ~threads:256 in
          let n = Profile.time_of dn ~node:v ~regs:16 ~threads:256 in
          if n > c then any_slower := true;
          if n < c *. 0.99 then
            Alcotest.failf "node %d faster without coalescing" v
        done;
        Alcotest.(check bool) "some penalty" true !any_slower);
  ]

(* --- Select --- *)

let select_tests =
  [
    t "macro repetition vector balances" (fun () ->
        let g = ab_graph () in
        let r = Result.get_ok (Sdf.steady_state g) in
        let reps, scale = Select.macro_reps g r ~threads:[| 512; 512 |] in
        (* k'_v * threads proportional to original reps *)
        Alcotest.(check bool) "balance" true
          (reps.(0) * 512 * 2 = reps.(1) * 512 * 3);
        Alcotest.(check bool) "scale positive" true (scale > 0));
    t "mixed thread counts (paper Fig. 9 example)" (fun () ->
        (* A: 256 threads push 2; B: 128 threads pop 1 -> 1 instance of A,
           4 instances of B per macro steady state *)
        let a =
          Kernel.Build.(
            Kernel.make_filter ~name:"A" ~pop:2 ~push:2 [ push pop; push pop ])
        in
        let b = Kernel.identity () in
        let g = Flatten.flatten (Ast.pipeline "p" [ Ast.Filter a; Ast.Filter b ]) in
        let r = Result.get_ok (Sdf.steady_state g) in
        Alcotest.(check (array int)) "orig" [| 1; 2 |] r.Sdf.reps;
        let reps, _ = Select.macro_reps g r ~threads:[| 256; 128 |] in
        Alcotest.(check (array int)) "macro" [| 1; 4 |] reps);
    t "selection picks a feasible global pair" (fun () ->
        let g = ab_graph () in
        let r = Result.get_ok (Sdf.steady_state g) in
        let d = Profile.run arch g ~mode:Profile.Coalesced in
        match Select.select g r d with
        | Ok cfg ->
          Alcotest.(check bool) "regs in options" true
            (List.mem cfg.Select.regs d.Profile.reg_options);
          Array.iteri
            (fun v th ->
              Alcotest.(check bool) "feasible per node" true
                (Profile.time_of d ~node:v ~regs:cfg.Select.regs ~threads:th
                < infinity);
              Alcotest.(check bool) "within block" true
                (th <= cfg.Select.block_threads))
            cfg.Select.threads
        | Error m -> Alcotest.fail m);
    t "per-node delays positive" (fun () ->
        let c = compiled_ab () in
        Array.iter
          (fun d -> Alcotest.(check bool) "pos" true (d > 0))
          c.Compile.config.Select.delay);
  ]

(* --- Instances / deps / MII --- *)

let instance_tests =
  [
    t "instance expansion and indexing" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let insts = Instances.instances cfg in
        Alcotest.(check int) "count" (Instances.num_instances cfg)
          (List.length insts);
        List.iteri
          (fun i inst -> Alcotest.(check int) "dense" i (Instances.index cfg inst))
          insts);
    t "dependences have non-positive jlag" (fun () ->
        let c = compiled_ab () in
        List.iter
          (fun (d : Instances.dep) ->
            Alcotest.(check bool) "jlag<=0" true (d.jlag <= 0))
          (Instances.deps c.Compile.graph c.Compile.config));
    t "dependence covers every consumer instance" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let deps = Instances.deps c.Compile.graph cfg in
        (* every instance of B (node 1) must depend on some instance of A *)
        for k = 0 to cfg.Select.reps.(1) - 1 do
          if
            not
              (List.exists
                 (fun (d : Instances.dep) ->
                   d.dst.Instances.node = 1 && d.dst.Instances.k = k)
                 deps)
          then Alcotest.failf "B instance %d has no producer dep" k
        done);
    t "ResMII is total work over SMs" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let total = ref 0 in
        Array.iteri
          (fun v k -> total := !total + (k * cfg.Select.delay.(v)))
          cfg.Select.reps;
        Alcotest.(check int) "resmii"
          (Numeric.Intmath.cdiv !total 16)
          (Mii.res_mii cfg ~num_sms:16));
    t "RecMII zero for acyclic benchmarks (footnote 1)" (fun () ->
        let c = compiled_ab () in
        Alcotest.(check int) "recmii" 0 (Mii.rec_mii c.Compile.graph c.Compile.config));
    t "lower bound covers longest delay" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let maxd = Array.fold_left max 0 cfg.Select.delay in
        Alcotest.(check bool) "bound" true
          (Mii.lower_bound c.Compile.graph cfg ~num_sms:16 > maxd));
  ]

(* --- Schedulers --- *)

let sched_tests =
  [
    t "heuristic schedule validates" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let lb = Mii.lower_bound c.Compile.graph cfg ~num_sms:16 in
        match Heuristic.solve c.Compile.graph cfg ~num_sms:16 ~ii:(2 * lb) with
        | `Schedule s ->
          Alcotest.(check (result unit string)) "valid" (Ok ())
            (Swp_schedule.validate c.Compile.graph s)
        | `Infeasible -> Alcotest.fail "heuristic infeasible at 2x bound");
    t "exact ILP schedule validates and matches heuristic feasibility" (fun () ->
        let c = Result.get_ok (Compile.compile ~num_sms:2 (ab_graph ())) in
        let cfg = c.Compile.config in
        let g = c.Compile.graph in
        let lb = Mii.lower_bound g cfg ~num_sms:2 in
        (* sweep a few candidate IIs; whenever the heuristic succeeds the
           exact solver must also find a schedule *)
        List.iter
          (fun ii ->
            match Heuristic.solve g cfg ~num_sms:2 ~ii with
            | `Schedule _ -> (
              match Ilp.solve ~node_budget:4000 g cfg ~num_sms:2 ~ii with
              | `Schedule s ->
                Alcotest.(check (result unit string)) "ilp valid" (Ok ())
                  (Swp_schedule.validate g s)
              | `Infeasible ->
                Alcotest.failf "ILP infeasible at II=%d but heuristic found one" ii
              | `Budget_exhausted -> ())
            | `Infeasible -> ())
          [ lb; lb + (lb / 10); 2 * lb ]);
    t "ILP constraint structure matches the formulation" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let g = c.Compile.graph in
        let num_sms = 2 in
        let insts = Instances.num_instances cfg in
        let deps = Instances.deps g cfg in
        let ndeps = List.length deps in
        let lb = Mii.lower_bound g cfg ~num_sms in
        (match Ilp.build g cfg ~num_sms ~ii:(2 * lb) with
        | Error m -> Alcotest.fail m
        | Ok (p, vm) ->
          (* variables: w (insts x sms) + o + f + one g per non-self dep *)
          let self_deps =
            List.length
              (List.filter
                 (fun (d : Instances.dep) -> d.src = d.dst)
                 deps)
          in
          Alcotest.(check int) "variables"
            ((insts * num_sms) + (2 * insts) + (ndeps - self_deps))
            (Lp.Problem.num_vars p);
          Alcotest.(check int) "w vars" (insts * num_sms) (Hashtbl.length vm.Ilp.w);
          (* constraints: assignment (1) per instance, resource (2) per SM,
             symmetry pin, and per non-self dep: 2 x sms indicator rows (7)
             plus the two systems of (8) *)
          Alcotest.(check int) "constraints"
            (insts + num_sms + 1 + ((ndeps - self_deps) * ((2 * num_sms) + 2))
            + self_deps * 0)
            (Lp.Problem.num_constraints p)));
    t "dependence count bounded by paper's (I/O + 1) per edge" (fun () ->
        (* Sec. III: each edge contributes at most ceil(I/O) + 1 distinct
           constraints per consumer instance *)
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let g = c.Compile.graph in
        let deps = Instances.deps g cfg in
        List.iter
          (fun (e : Graph.edge) ->
            let o', i', _ = Instances.edge_macro_rates g cfg e in
            let bound =
              cfg.Select.reps.(e.Graph.dst)
              * (Numeric.Intmath.cdiv i' o' + 1)
            in
            let count =
              List.length
                (List.filter
                   (fun (d : Instances.dep) ->
                     d.src.Instances.node = e.Graph.src
                     && d.dst.Instances.node = e.Graph.dst)
                   deps)
            in
            if count > bound then
              Alcotest.failf "edge %d->%d: %d deps > bound %d" e.Graph.src
                e.Graph.dst count bound)
          g.Graph.edges);
    t "ILP infeasible below max delay" (fun () ->
        let c = compiled_ab () in
        let cfg = c.Compile.config in
        let maxd = Array.fold_left max 0 cfg.Select.delay in
        match Ilp.solve c.Compile.graph cfg ~num_sms:16 ~ii:(maxd / 2) with
        | `Infeasible -> ()
        | _ -> Alcotest.fail "expected infeasible");
    t "validator rejects overloaded SM" (fun () ->
        let c = compiled_ab () in
        let s = c.Compile.schedule in
        (* pile every instance onto SM 0 at o=0: breaks (2) and/or deps *)
        let broken =
          {
            s with
            Swp_schedule.entries =
              List.map
                (fun e -> { e with Swp_schedule.sm = 0; o = 0; f = 0 })
                s.Swp_schedule.entries;
          }
        in
        match Swp_schedule.validate c.Compile.graph broken with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation failure");
    t "validator rejects missing cross-SM separation" (fun () ->
        let c = compiled_ab () in
        let s = c.Compile.schedule in
        (* force all f to 0 while spreading across SMs *)
        let broken =
          {
            s with
            Swp_schedule.entries =
              List.mapi
                (fun i e -> { e with Swp_schedule.sm = i mod 2; f = 0; o = 0 })
                s.Swp_schedule.entries;
          }
        in
        match Swp_schedule.validate c.Compile.graph broken with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation failure");
    t "ii search achieves bound on trivial graph" (fun () ->
        let g = Flatten.flatten (Ast.Filter (Kernel.identity ())) in
        let c = Result.get_ok (Compile.compile g) in
        Alcotest.(check int) "no relaxation" c.Compile.search_stats.Ii_search.lower_bound
          c.Compile.schedule.Swp_schedule.ii);
  ]

(* --- Buffer layout --- *)

let layout_tests =
  [
    t "pop map reduces to push map on rate-matched edges" (fun () ->
        for rate = 1 to 8 do
          for n = 0 to rate - 1 do
            for tid = 0 to 255 do
              Alcotest.(check int) "same"
                (Buffer_layout.push_index ~rate ~n ~tid)
                (Buffer_layout.pop_index ~push_rate:rate ~pop_rate:rate ~n ~tid)
            done
          done
        done);
    t "pop map addresses the producer's layout (eq. 11, multirate)" (fun () ->
        (* Consumer popping [i] per firing from a producer pushing [o] per
           firing: token n of consumer firing tid is stream token
           s = tid*i + n, stored at the producer's eq.-(10) address of s. *)
        List.iter
          (fun (o, i) ->
            for tid = 0 to 511 do
              for n = 0 to i - 1 do
                let s = (tid * i) + n in
                Alcotest.(check int) "producer layout"
                  (Buffer_layout.push_index ~rate:o ~n:(s mod o) ~tid:(s / o))
                  (Buffer_layout.pop_index ~push_rate:o ~pop_rate:i ~n ~tid)
              done
            done)
          [ (1, 2); (2, 1); (2, 3); (3, 2); (4, 7); (8, 3) ]);
    t "layout is a bijection on each instance region" (fun () ->
        List.iter
          (fun (push_rate, threads) ->
            let size = push_rate * threads in
            let seen = Array.make size false in
            for s = 0 to size - 1 do
              let a = Buffer_layout.addr_of_token ~push_rate ~threads s in
              if a < 0 || a >= size then
                Alcotest.failf "addr %d out of range (rate %d, threads %d)" a
                  push_rate threads;
              if seen.(a) then Alcotest.failf "collision at %d" a;
              seen.(a) <- true
            done)
          [ (1, 128); (2, 256); (3, 128); (4, 512); (8, 384) ]);
    t "shuffle permutation shape (eq. 9)" (fun () ->
        let spr = 4 in
        (* tokens 0..cluster-1 land cluster apart *)
        Alcotest.(check int) "0" 0 (Buffer_layout.shuffle ~steady_pop_rate:spr 0);
        Alcotest.(check int) "1" spr (Buffer_layout.shuffle ~steady_pop_rate:spr 1);
        Alcotest.(check int) "128" 1
          (Buffer_layout.shuffle ~steady_pop_rate:spr 128));
    t "out-of-range token rejected" (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Buffer_layout.addr_of_token: token out of region")
          (fun () ->
            ignore (Buffer_layout.addr_of_token ~push_rate:2 ~threads:4 8)));
    t "buffer sizing scales with coarsening" (fun () ->
        let c = compiled_ab () in
        let s1 = Buffer_layout.size_buffers c.Compile.graph c.Compile.schedule ~coarsening:1 in
        let s8 = Buffer_layout.size_buffers c.Compile.graph c.Compile.schedule ~coarsening:8 in
        Alcotest.(check bool) "scales" true
          (s8.Buffer_layout.total_bytes > 4 * s1.Buffer_layout.total_bytes));
    t "steady tokens match SDF rates" (fun () ->
        let c = compiled_ab () in
        let g = c.Compile.graph in
        let cfg = c.Compile.config in
        List.iter
          (fun e ->
            let prod =
              cfg.Select.reps.(e.Graph.src)
              * Graph.production g e * cfg.Select.threads.(e.Graph.src)
            in
            Alcotest.(check int) "tokens" prod (Buffer_layout.steady_tokens g cfg e))
          g.Graph.edges);
  ]

(* --- Compile & executors --- *)

let compile_tests =
  [
    t "end-to-end compile of every benchmark" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            match Compile.compile (Flatten.flatten (e.stream ())) with
            | Ok c ->
              Alcotest.(check (result unit string)) e.name (Ok ())
                (Swp_schedule.validate c.Compile.graph c.Compile.schedule)
            | Error m -> Alcotest.fail (e.name ^ ": " ^ m))
          Benchmarks.Registry.all);
    t "recoarsen preserves schedule" (fun () ->
        let c = compiled_ab () in
        let c8 = Compile.recoarsen c 8 in
        Alcotest.(check int) "same II" c.Compile.schedule.Swp_schedule.ii
          c8.Compile.schedule.Swp_schedule.ii;
        Alcotest.(check int) "coarsening" 8 c8.Compile.coarsening);
    t "coarsening monotonically improves throughput" (fun () ->
        let c = compiled_ab () in
        let per n = (Executor.time_swp (Compile.recoarsen c n)).Executor.cycles_per_steady in
        Alcotest.(check bool) "1>=4" true (per 1 >= per 4);
        Alcotest.(check bool) "4>=8" true (per 4 >= per 8);
        Alcotest.(check bool) "8>=16" true (per 8 >= per 16));
    t "executor II at least the scheduled II" (fun () ->
        let c = compiled_ab () in
        let gt = Executor.time_swp c in
        Alcotest.(check bool) "actual >= scheduled" true
          (gt.Executor.ii_cycles >= c.Compile.schedule.Swp_schedule.ii / 2));
    t "serial baseline stays within buffer budget" (fun () ->
        let g = Flatten.flatten (Benchmarks.Bitonic.stream ()) in
        let budget = 1 lsl 22 in
        match Executor.time_serial g ~budget_bytes:budget with
        | Ok st ->
          Alcotest.(check bool) "budget" true (st.Executor.buffer_bytes <= budget);
          Alcotest.(check bool) "positive" true (st.Executor.cycles_per_steady > 0.0)
        | Error m -> Alcotest.fail m);
    t "speedup positive for all benchmarks" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            let c = Result.get_ok (Compile.compile g) in
            let gt = Executor.time_swp (Compile.recoarsen c 8) in
            match
              Executor.speedup ~arch ~graph:g
                ~gpu_cycles_per_steady:gt.Executor.cycles_per_steady ()
            with
            | Ok s ->
              if s <= 0.0 then Alcotest.failf "%s: non-positive speedup" e.name
            | Error m -> Alcotest.fail m)
          Benchmarks.Registry.all);
    t "SWPNC never beats SWP by more than noise" (fun () ->
        (* the coalesced scheme is the optimized one; allow a small
           tolerance for shared-memory fast paths on tiny working sets *)
        List.iter
          (fun name ->
            let e = Option.get (Benchmarks.Registry.find name) in
            let g = Flatten.flatten (e.stream ()) in
            let per scheme =
              let c = Result.get_ok (Compile.compile ~scheme g) in
              (Executor.time_swp (Compile.recoarsen c 8)).Executor.cycles_per_steady
            in
            let swp = per Compile.Swp_coalesced in
            let swpnc = per Compile.Swp_non_coalesced in
            if swpnc < swp *. 0.9 then
              Alcotest.failf "%s: SWPNC %.1f much faster than SWP %.1f" name
                swpnc swp)
          [ "DCT"; "FFT"; "MatrixMult" ]);
  ]

let suite =
  profile_tests @ select_tests @ instance_tests @ sched_tests @ layout_tests
  @ compile_tests
