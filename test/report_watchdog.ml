(* Report-regression watchdog: recompile every registry benchmark, build
   its flight-recorder report, and diff it against the checked-in
   baseline (report_baseline/<name>.json).

   Drift policy: the fields that define the compile's outcome — achieved
   II, quality rung, degradation rationale, committed attempt count, and
   the binding lower-bound component — must match the baseline exactly.
   Per-stage work-unit counts may drift within a tolerance (25% relative
   with a small absolute slack) so that benign retunes of the profiler's
   sweep grid don't fail CI, while a stage silently doubling its work
   does.  Run with --update to regenerate the baselines intentionally.

   Baselines are the full compact report JSON (the deterministic,
   timings-free serialization), so the repo also carries a reviewable
   record of what each compile looked like.  The reader below extracts
   just the watched fields; the repo carries no JSON library and the
   serializer's field order is deterministic, so substring scanning is
   reliable. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    (fun () -> output_string oc text)
    ~finally:(fun () -> close_out oc)

(* ---- scrappy field extraction over the compact report JSON ---------- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let int_after s key =
  match find_sub s (Printf.sprintf "\"%s\":" key) with
  | None -> failwith (Printf.sprintf "report field %S missing" key)
  | Some i ->
    let n = String.length s in
    let j = ref i in
    if !j < n && s.[!j] = '-' then incr j;
    let start = !j in
    while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
    if !j = start then failwith (Printf.sprintf "report field %S not an int" key)
    else int_of_string (String.sub s i (!j - i))

let str_after s key =
  match find_sub s (Printf.sprintf "\"%s\":\"" key) with
  | None -> failwith (Printf.sprintf "report field %S missing" key)
  | Some i -> (
    match String.index_from_opt s i '"' with
    | Some close -> String.sub s i (close - i)
    | None -> failwith (Printf.sprintf "report field %S unterminated" key))

(* Per-stage work: every {"stage":"<name>","work":<n>} object. *)
let stage_works s =
  let marker = "\"stage\":\"" in
  let n = String.length s and m = String.length marker in
  let out = ref [] in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub s !i m = marker then begin
      let close =
        match String.index_from_opt s (!i + m) '"' with
        | Some c -> c
        | None -> failwith "unterminated stage name"
      in
      let name = String.sub s (!i + m) (close - !i - m) in
      let tail = String.sub s close (n - close) in
      out := (name, int_after tail "work") :: !out;
      i := close
    end;
    incr i
  done;
  List.rev !out

(* ---- drift checks --------------------------------------------------- *)

type check = { field : string; base : string; fresh : string; ok : bool }

let exact_int field base fresh =
  let b = int_after base field and f = int_after fresh field in
  { field; base = string_of_int b; fresh = string_of_int f; ok = b = f }

let exact_str field base fresh =
  let b = str_after base field and f = str_after fresh field in
  { field; base = b; fresh = f; ok = b = f }

(* 25% relative tolerance with an absolute slack of 16 work units, so
   tiny stages (layout on a 6-filter graph) don't fail on a +4 blip. *)
let within_tolerance base fresh =
  abs (fresh - base) <= max 16 (base * 25 / 100)

let compare_reports base fresh =
  let exact =
    [
      exact_int "achieved" base fresh;
      exact_str "quality" base fresh;
      exact_str "rationale" base fresh;
      exact_int "attempts" base fresh;
      exact_str "binding" base fresh;
    ]
  in
  let base_stages = stage_works base and fresh_stages = stage_works fresh in
  let stage_checks =
    List.map
      (fun (name, b) ->
        match List.assoc_opt name fresh_stages with
        | None ->
          {
            field = "work." ^ name;
            base = string_of_int b;
            fresh = "missing";
            ok = false;
          }
        | Some f ->
          {
            field = "work." ^ name;
            base = string_of_int b;
            fresh = string_of_int f;
            ok = within_tolerance b f;
          })
      base_stages
  in
  let missing_in_base =
    List.filter_map
      (fun (name, f) ->
        if List.mem_assoc name base_stages then None
        else
          Some
            {
              field = "work." ^ name;
              base = "missing";
              fresh = string_of_int f;
              ok = false;
            })
      fresh_stages
  in
  exact @ stage_checks @ missing_in_base

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let update = List.mem "--update" args in
  let dir =
    match List.filter (fun a -> a <> "--update") args with
    | d :: _ -> d
    | [] -> "report_baseline"
  in
  let failures = ref 0 in
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let name = e.Benchmarks.Registry.name in
      let path = Filename.concat dir (name ^ ".json") in
      Swp_core.Profile.clear_cache ();
      let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
      match Swp_core.Compile.compile g with
      | Error m ->
        incr failures;
        Printf.printf "%-12s FAIL compile: %s\n" name m
      | Ok c -> (
        let fresh =
          Swp_core.Report.to_json (Swp_core.Report.assemble ~program:name c)
        in
        if update then begin
          write_file path (fresh ^ "\n");
          Printf.printf "%-12s baseline written\n" name
        end
        else
          match read_file path with
          | exception Sys_error _ ->
            incr failures;
            Printf.printf "%-12s FAIL no baseline (run with --update)\n" name
          | base ->
            let checks = compare_reports base fresh in
            let bad = List.filter (fun ch -> not ch.ok) checks in
            if bad = [] then Printf.printf "%-12s ok\n" name
            else begin
              incr failures;
              Printf.printf "%-12s FAIL report drifted:\n" name;
              List.iter
                (fun ch ->
                  Printf.printf "  %-12s baseline %-10s now %s\n" ch.field
                    ch.base ch.fresh)
                bad
            end))
    Benchmarks.Registry.all;
  (* A baseline for a benchmark that no longer exists would silently
     stop gating anything: flag it. *)
  if not update then
    Array.iter
      (fun file ->
        if Filename.check_suffix file ".json" then begin
          let name = Filename.chop_suffix file ".json" in
          if Benchmarks.Registry.find name = None then begin
            incr failures;
            Printf.printf "%-12s FAIL stale baseline file\n" name
          end
        end)
      (try Sys.readdir dir with Sys_error _ -> [||]);
  if !failures > 0 then begin
    Printf.printf "%d report drift(s)\n" !failures;
    exit 1
  end
  else print_string "no report drift\n"
