(* Observability layer: span tracing, metrics registry, Chrome export,
   and an end-to-end traced compile of FMRadio. *)

open Streamit

let t name f = Alcotest.test_case name `Quick f

(* Deterministic clock: advances 10 us on every read. *)
let install_fake_clock () =
  let n = ref 0.0 in
  Obs.Trace.set_clock (fun () ->
      let v = !n in
      n := v +. 10.0;
      v)

let with_fake_trace f =
  Obs.Trace.reset ();
  install_fake_clock ();
  Obs.Trace.enable ();
  Fun.protect f ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.use_default_clock ())

let span_names = List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name)

(* Minimal JSON syntax checker, enough for the grammar we emit (objects,
   arrays, strings with escapes, numbers, booleans). *)
let json_parses (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail () = raise Exit in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let lit l =
    let m = String.length l in
    if !pos + m <= n && String.sub s !pos m = l then pos := !pos + m else fail ()
  in
  let str () =
    lit "\"";
    let rec go () =
      if !pos >= n then fail ()
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          pos := !pos + 2;
          go ()
        | _ ->
          incr pos;
          go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> incr pos | _ -> ());
    let digits () =
      let start = !pos in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then fail ()
    in
    digits ();
    (match peek () with
    | Some '.' ->
      incr pos;
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> fail ()
  and obj () =
    lit "{";
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        lit ":";
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
  and arr () =
    lit "[";
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | ok -> ok
  | exception Exit -> false

let ab_pipeline () =
  let a =
    Kernel.Build.(
      Kernel.make_filter ~name:"A" ~pop:1 ~push:2 [ push pop; push (f 0.0) ])
  in
  let b =
    Kernel.Build.(
      Kernel.make_filter ~name:"B" ~pop:3 ~push:1 [ push (pop +: pop +: pop) ])
  in
  Ast.pipeline "ab" [ Ast.Filter a; Ast.Filter b ]

let trace_tests =
  [
    t "span nesting and ordering" (fun () ->
        let r =
          with_fake_trace (fun () ->
              Obs.Trace.with_span "root" (fun () ->
                  ignore (Obs.Trace.with_span "a" (fun () -> 1));
                  Obs.Trace.add_attr "k" (Obs.Trace.Int 7);
                  Obs.Trace.with_span "b" (fun () -> 2)))
        in
        Alcotest.(check int) "result threads through" 2 r;
        match Obs.Trace.roots () with
        | [ root ] ->
          Alcotest.(check string) "root name" "root" root.Obs.Trace.name;
          Alcotest.(check (list string))
            "children in start order" [ "a"; "b" ]
            (span_names root.Obs.Trace.children);
          Alcotest.(check bool)
            "attr recorded" true
            (List.mem_assoc "k" root.Obs.Trace.attrs);
          List.iter
            (fun (s : Obs.Trace.span) ->
              Alcotest.(check bool)
                "positive duration" true
                (s.Obs.Trace.end_us > s.Obs.Trace.start_us))
            (root :: root.Obs.Trace.children)
        | l -> Alcotest.failf "expected 1 root, got %d" (List.length l));
    t "span closes on exception" (fun () ->
        with_fake_trace (fun () ->
            try
              Obs.Trace.with_span "outer" (fun () ->
                  Obs.Trace.with_span "boom" (fun () -> failwith "x"))
            with Failure _ -> ());
        match Obs.Trace.find_all "boom" with
        | [ s ] ->
          Alcotest.(check bool) "closed" true (s.Obs.Trace.end_us >= s.Obs.Trace.start_us)
        | l -> Alcotest.failf "expected 1 boom span, got %d" (List.length l));
    t "find_all is depth-first" (fun () ->
        with_fake_trace (fun () ->
            Obs.Trace.with_span "p" (fun () ->
                Obs.Trace.with_span "x" (fun () ->
                    Obs.Trace.with_span "x" (fun () -> ())));
            Obs.Trace.with_span "x" (fun () -> ()));
        Alcotest.(check int) "three x spans" 3
          (List.length (Obs.Trace.find_all "x")));
    t "disabled sink records nothing and returns the value" (fun () ->
        Obs.Trace.reset ();
        Obs.Trace.disable ();
        let r = Obs.Trace.with_span "n" (fun () -> 41 + 1) in
        Obs.Trace.add_attr "ignored" (Obs.Trace.Int 0);
        Alcotest.(check int) "value" 42 r;
        Alcotest.(check int) "no roots" 0 (List.length (Obs.Trace.roots ())));
    t "chrome json golden (fake clock)" (fun () ->
        with_fake_trace (fun () ->
            ignore
              (Obs.Trace.with_span "compile"
                 ~attrs:[ ("scheme", Obs.Trace.Str "SWP") ]
                 (fun () ->
                   Obs.Trace.with_span "profile" (fun () ->
                       Obs.Trace.add_attr "cache" (Obs.Trace.Str "miss")))));
        let golden =
          "{\"traceEvents\":[{\"name\":\"compile\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":0.0,\"dur\":30.0,\"pid\":1,\"tid\":1,\"args\":{\"scheme\":\"SWP\"}},{\"name\":\"profile\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":10.0,\"dur\":10.0,\"pid\":1,\"tid\":1,\"args\":{\"cache\":\"miss\"}}],\"displayTimeUnit\":\"ms\"}"
        in
        Alcotest.(check string) "golden" golden (Obs.Trace.to_chrome_json ()));
    t "chrome json escapes strings" (fun () ->
        with_fake_trace (fun () ->
            Obs.Trace.with_span "q"
              ~attrs:[ ("s", Obs.Trace.Str "a\"b\\c\nd") ]
              (fun () -> ()));
        let json = Obs.Trace.to_chrome_json () in
        Alcotest.(check bool) "parses" true (json_parses json));
    t "two-filter pipeline trace (scrubbed)" (fun () ->
        (* Full compile of the multirate ab pipeline under the fake
           clock; the span-name sequence is the deterministic part of
           the trace (timestamps scrubbed by construction). *)
        with_fake_trace (fun () ->
            let g = Flatten.flatten (ab_pipeline ()) in
            match Swp_core.Compile.compile ~num_sms:2 g with
            | Error m -> Alcotest.failf "compile failed: %s" m
            | Ok _ -> ());
        let json = Obs.Trace.to_chrome_json () in
        Alcotest.(check bool) "json parses" true (json_parses json);
        Alcotest.(check (list string))
          "top-level spans" [ "flatten"; "compile" ]
          (span_names (Obs.Trace.roots ()));
        let compile_children =
          match Obs.Trace.roots () with
          | [ _; c ] -> span_names c.Obs.Trace.children
          | _ -> []
        in
        Alcotest.(check (list string))
          "compile stages"
          [ "sdf.solve"; "profile"; "select"; "ii_search"; "buffer_layout" ]
          compile_children;
        Alcotest.(check bool)
          "at least one attempt" true
          (Obs.Trace.find_all "ii_search.attempt" <> []));
  ]

let metrics_tests =
  [
    t "counter get-or-create and reset in place" (fun () ->
        Obs.Metrics.reset ();
        let c = Obs.Metrics.counter "test.counter" in
        Obs.Metrics.inc c;
        Obs.Metrics.add c 4;
        Alcotest.(check int) "inc+add" 5 (Obs.Metrics.value c);
        let c2 = Obs.Metrics.counter "test.counter" in
        Obs.Metrics.inc c2;
        Alcotest.(check int) "same instrument" 6 (Obs.Metrics.value c);
        Obs.Metrics.reset ();
        Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.value c);
        Obs.Metrics.inc c;
        Alcotest.(check int) "handle stays live" 1 (Obs.Metrics.value c));
    t "labels distinguish instruments, order-insensitively" (fun () ->
        Obs.Metrics.reset ();
        let a = Obs.Metrics.counter ~labels:[ ("k", "v") ] "test.lbl" in
        let b = Obs.Metrics.counter ~labels:[ ("k", "w") ] "test.lbl" in
        Obs.Metrics.inc a;
        Alcotest.(check int) "b untouched" 0 (Obs.Metrics.value b);
        let a2 =
          Obs.Metrics.counter ~labels:[ ("x", "1"); ("k", "v") ] "test.lbl2"
        in
        let a3 =
          Obs.Metrics.counter ~labels:[ ("k", "v"); ("x", "1") ] "test.lbl2"
        in
        Obs.Metrics.inc a2;
        Alcotest.(check int) "sorted key" 1 (Obs.Metrics.value a3));
    t "gauge and histogram semantics" (fun () ->
        Obs.Metrics.reset ();
        let g = Obs.Metrics.gauge "test.gauge" in
        Obs.Metrics.set g 2.5;
        Alcotest.(check (float 1e-9)) "gauge" 2.5 (Obs.Metrics.gauge_value g);
        let h = Obs.Metrics.histogram "test.hist" in
        Alcotest.(check bool) "empty min is nan" true
          (Float.is_nan (Obs.Metrics.hist_min h));
        List.iter (Obs.Metrics.observe h) [ 3.0; 1.0; 2.0 ];
        Alcotest.(check int) "count" 3 (Obs.Metrics.hist_count h);
        Alcotest.(check (float 1e-9)) "sum" 6.0 (Obs.Metrics.hist_sum h);
        Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Metrics.hist_min h);
        Alcotest.(check (float 1e-9)) "max" 3.0 (Obs.Metrics.hist_max h));
    t "snapshot and json export" (fun () ->
        Obs.Metrics.reset ();
        let c = Obs.Metrics.counter "test.snap" in
        Obs.Metrics.add c 3;
        let item =
          List.find
            (fun (i : Obs.Metrics.snapshot_item) -> i.name = "test.snap")
            (Obs.Metrics.snapshot ())
        in
        (match item.kind with
        | `Counter v -> Alcotest.(check int) "snapshot value" 3 v
        | _ -> Alcotest.fail "expected a counter");
        let json = Obs.Metrics.to_json () in
        Alcotest.(check bool) "json parses" true (json_parses json);
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "json mentions the counter" true
          (contains json "test.snap"));
  ]

(* ---- registry edge cases and the OpenMetrics exposition ------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let export_tests =
  [
    t "empty histogram: nan extrema, exporters stay well-formed" (fun () ->
        Obs.Metrics.reset ();
        let h = Obs.Metrics.histogram "edge.empty_hist" in
        ignore h;
        let item =
          List.find
            (fun (i : Obs.Metrics.snapshot_item) -> i.name = "edge.empty_hist")
            (Obs.Metrics.snapshot ())
        in
        (match item.kind with
        | `Histogram (count, sum, min_v, max_v) ->
          Alcotest.(check int) "count 0" 0 count;
          Alcotest.(check (float 1e-9)) "sum 0" 0.0 sum;
          Alcotest.(check bool) "min nan" true (Float.is_nan min_v);
          Alcotest.(check bool) "max nan" true (Float.is_nan max_v)
        | _ -> Alcotest.fail "expected a histogram");
        Alcotest.(check bool) "json still parses" true
          (json_parses (Obs.Metrics.to_json ()));
        let om = Obs.Export.to_openmetrics () in
        Alcotest.(check bool) "count sample present" true
          (contains om "edge_empty_hist_count 0\n");
        (* extrema gauges must not be exported for an empty histogram *)
        Alcotest.(check bool) "no _min for empty histogram" false
          (contains om "edge_empty_hist_min");
        Alcotest.(check bool) "no _max for empty histogram" false
          (contains om "edge_empty_hist_max"));
    t "counter overflow wraps without raising" (fun () ->
        Obs.Metrics.reset ();
        let c = Obs.Metrics.counter "edge.overflow" in
        Obs.Metrics.add c max_int;
        Obs.Metrics.inc c;
        (* native int overflow wraps (two's complement); the registry
           must neither raise nor lose the handle *)
        Alcotest.(check int) "wrapped to min_int" min_int
          (Obs.Metrics.value c);
        Obs.Metrics.add c 1;
        Alcotest.(check int) "still accumulating" (min_int + 1)
          (Obs.Metrics.value c);
        Alcotest.(check bool) "openmetrics renders the wrapped value" true
          (contains
             (Obs.Export.to_openmetrics ())
             (Printf.sprintf "edge_overflow_total %d\n" (min_int + 1))));
    t "openmetrics: name sanitization and label escaping" (fun () ->
        Obs.Metrics.reset ();
        let c =
          Obs.Metrics.counter
            ~labels:[ ("path", "a\"b\\c\nd") ]
            "edge.dots.and-dashes"
        in
        Obs.Metrics.inc c;
        let om = Obs.Export.to_openmetrics () in
        Alcotest.(check bool) "dots and dashes become underscores" true
          (contains om "edge_dots_and_dashes_total");
        Alcotest.(check bool) "label value escaped per the ABNF" true
          (contains om "{path=\"a\\\"b\\\\c\\nd\"} 1\n");
        Alcotest.(check string) "escape_label round trip" "a\\\"b\\\\c\\nd"
          (Obs.Export.escape_label "a\"b\\c\nd"));
    t "openmetrics: families typed once, EOF-terminated" (fun () ->
        Obs.Metrics.reset ();
        let a = Obs.Metrics.counter ~labels:[ ("k", "1") ] "edge.family" in
        let b = Obs.Metrics.counter ~labels:[ ("k", "2") ] "edge.family" in
        Obs.Metrics.inc a;
        Obs.Metrics.add b 2;
        let h = Obs.Metrics.histogram "edge.family_hist" in
        Obs.Metrics.observe h 4.5;
        let g = Obs.Metrics.gauge "edge.family_gauge" in
        Obs.Metrics.set g Float.infinity;
        let om = Obs.Export.to_openmetrics () in
        let lines = String.split_on_char '\n' (String.trim om) in
        Alcotest.(check string) "terminator" "# EOF"
          (List.nth lines (List.length lines - 1));
        let type_lines =
          List.filter (fun l -> contains l "# TYPE edge_family ") lines
        in
        Alcotest.(check int) "one TYPE line for the two-cell family" 1
          (List.length type_lines);
        Alcotest.(check bool) "both cells exported" true
          (contains om "edge_family_total{k=\"1\"} 1\n"
          && contains om "edge_family_total{k=\"2\"} 2\n");
        Alcotest.(check bool) "histogram count/sum/extrema" true
          (contains om "edge_family_hist_count 1\n"
          && contains om "edge_family_hist_sum 4.5\n"
          && contains om "edge_family_hist_min 4.5\n"
          && contains om "edge_family_hist_max 4.5\n");
        Alcotest.(check bool) "infinite gauge renders +Inf" true
          (contains om "edge_family_gauge +Inf\n");
        (* every non-comment line is "name[{labels}] value" *)
        List.iter
          (fun l ->
            if l <> "" && l.[0] <> '#' then
              match String.rindex_opt l ' ' with
              | None -> Alcotest.failf "malformed sample line: %s" l
              | Some i -> (
                let v = String.sub l (i + 1) (String.length l - i - 1) in
                match v with
                | "NaN" | "+Inf" | "-Inf" -> ()
                | _ ->
                  if Float.of_string_opt v = None then
                    Alcotest.failf "unparsable sample value in: %s" l))
          lines);
  ]

(* End-to-end smoke: compile FMRadio with tracing on; the trace must
   parse as JSON and contain every pipeline-stage span. *)
let smoke_tests =
  [
    t "FMRadio traced compile has all stage spans" (fun () ->
        Obs.Trace.reset ();
        Obs.Trace.enable ();
        Fun.protect ~finally:Obs.Trace.disable (fun () ->
            let e = Option.get (Benchmarks.Registry.find "fm_radio") in
            let g =
              Flatten.flatten
                (Obs.Trace.with_span "parse" e.Benchmarks.Registry.stream)
            in
            match Swp_core.Compile.compile g with
            | Error m -> Alcotest.failf "compile failed: %s" m
            | Ok c ->
              ignore (Cudagen.Kernel_gen.program c);
              ignore (Swp_core.Executor.time_swp c));
        let json = Obs.Trace.to_chrome_json () in
        Alcotest.(check bool) "trace parses" true (json_parses json);
        List.iter
          (fun stage ->
            Alcotest.(check bool)
              (stage ^ " span present") true
              (Obs.Trace.find_all stage <> []))
          [
            "parse"; "flatten"; "profile"; "select"; "ii_search";
            "ii_search.attempt"; "buffer_layout"; "codegen"; "execute";
          ]);
  ]

(* ---- domain-safety -------------------------------------------------
   Hammer the shared registry, the atomic instrument cells and the
   per-domain trace sinks from several domains at once.  The trace test
   is the regression for the old global span stack (a plain [ref]):
   with a shared stack, concurrent [with_span] calls interleave their
   pushes and pops, so roots steal other domains' children and the
   exact counts below cannot hold. *)

let hammer ~domains f =
  let ds = List.init domains (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

let concurrency_tests =
  [
    t "metrics: exact counts from 4 domains" (fun () ->
        Obs.Metrics.reset ();
        let c = Obs.Metrics.counter "conc.counter" in
        let h = Obs.Metrics.histogram "conc.hist" in
        hammer ~domains:4 (fun d ->
            for _ = 1 to 5_000 do
              Obs.Metrics.inc c
            done;
            for _ = 1 to 1_000 do
              Obs.Metrics.add c 3
            done;
            for i = 1 to 2_000 do
              Obs.Metrics.observe h (float_of_int (i + d))
            done);
        Alcotest.(check int) "counter exact" (4 * (5_000 + 3_000))
          (Obs.Metrics.value c);
        Alcotest.(check int) "histogram count exact" 8_000
          (Obs.Metrics.hist_count h);
        let expected_sum =
          let s = ref 0.0 in
          for d = 0 to 3 do
            for i = 1 to 2_000 do
              s := !s +. float_of_int (i + d)
            done
          done;
          !s
        in
        Alcotest.(check (float 1e-6)) "histogram sum exact" expected_sum
          (Obs.Metrics.hist_sum h);
        Alcotest.(check bool) "json snapshot parses" true
          (json_parses (Obs.Metrics.to_json ())));
    t "metrics: get-or-create races yield one instrument" (fun () ->
        Obs.Metrics.reset ();
        hammer ~domains:4 (fun _ ->
            for _ = 1 to 1_000 do
              Obs.Metrics.inc (Obs.Metrics.counter "conc.shared")
            done);
        Alcotest.(check int) "all increments on one cell" 4_000
          (Obs.Metrics.value (Obs.Metrics.counter "conc.shared")));
    t "trace: spans stay well-nested across 4 domains" (fun () ->
        Obs.Trace.reset ();
        Obs.Trace.enable ();
        Fun.protect ~finally:Obs.Trace.disable (fun () ->
            hammer ~domains:4 (fun d ->
                for i = 1 to 100 do
                  Obs.Trace.with_span "worker"
                    ~attrs:[ ("domain", Obs.Trace.Int d) ]
                    (fun () ->
                      Obs.Trace.with_span "inner" (fun () ->
                          Obs.Trace.add_attr "i" (Obs.Trace.Int i)))
                done));
        let roots = Obs.Trace.roots () in
        Alcotest.(check int) "one root per iteration" 400 (List.length roots);
        List.iter
          (fun (s : Obs.Trace.span) ->
            Alcotest.(check string) "root is a worker span" "worker"
              s.Obs.Trace.name;
            Alcotest.(check (list string))
              "exactly its own child" [ "inner" ]
              (span_names s.Obs.Trace.children))
          roots;
        Alcotest.(check int) "inner spans all attributed" 400
          (List.length (Obs.Trace.find_all "inner"));
        Alcotest.(check bool) "chrome export parses" true
          (json_parses (Obs.Trace.to_chrome_json ()));
        Obs.Trace.reset ());
    t "trace: merge keeps main's and workers' roots apart" (fun () ->
        Obs.Trace.reset ();
        Obs.Trace.enable ();
        Fun.protect ~finally:Obs.Trace.disable (fun () ->
            Obs.Trace.with_span "before" (fun () -> ());
            hammer ~domains:2 (fun _ ->
                for _ = 1 to 50 do
                  Obs.Trace.with_span "side" (fun () -> ())
                done);
            Obs.Trace.with_span "after" (fun () -> ()));
        let roots = Obs.Trace.roots () in
        Alcotest.(check int) "all roots survive the merge" 102
          (List.length roots);
        (* completion-sequence ordering puts main's bracketing spans at
           the very ends of the merged stream *)
        Alcotest.(check string) "first root" "before"
          (List.hd roots).Obs.Trace.name;
        Alcotest.(check string) "last root" "after"
          (List.nth roots 101).Obs.Trace.name;
        Obs.Trace.reset ());
  ]

(* ---- Canon: the one float formatter behind every exporter ---------- *)

(* export.ml (OpenMetrics), report.ml (JSON documents) and metrics.ml
   (snapshot JSON) each used to carry their own formatter; they
   diverged on -0.0, non-finite values and integers >= 1e15.  All
   three now delegate to Obs.Canon, and on finite floats they must
   agree to the byte. *)

let interesting_floats =
  [
    0.0; -0.0; 1.0; -1.0; 0.5; -0.5; 1e-3; 0.1; 3.14159265358979312;
    1e15; -1e15; 1e15 +. 2.0; 1.7976931348623157e308; 4.9e-324;
    1234567890.0; 2.0000000000000004;
  ]

let canon_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl interesting_floats;
        float;
        map (fun (m, e) -> ldexp m e) (pair (float_bound_inclusive 1.0) (int_range (-60) 60));
      ])

let canon_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"all former call sites agree and round-trip"
       ~count:500
       (QCheck.make canon_gen)
       (fun f ->
         QCheck.assume (Float.is_finite f);
         let s = Obs.Canon.finite f in
         (* the three exporters agree with finite and with each other *)
         Obs.Export.float_str f = s
         && Obs.Report.num f = s
         && Obs.Metrics.json_num f = s
         && Obs.Canon.to_string f = s
         (* and the rendering round-trips to the same bits *)
         && Int64.bits_of_float (float_of_string s) = Int64.bits_of_float f))

let canon_tests =
  [
    canon_prop;
    t "canonical fixed points" (fun () ->
        List.iter
          (fun (f, want) ->
            Alcotest.(check string)
              (Printf.sprintf "canon %h" f)
              want (Obs.Canon.finite f))
          [
            (0.0, "0.0");
            (-0.0, "-0.0");
            (42.0, "42.0");
            (0.5, "0.5");
            (0.1, "0.1");
            (1e15, "1e+15");
            (3.14159265358979312, "3.141592653589793");
            (2.0000000000000004, "2.0000000000000004");
          ]);
    t "non-finite values per target format" (fun () ->
        Alcotest.(check string) "json nan" "null" (Obs.Report.num Float.nan);
        Alcotest.(check string) "json inf" "null"
          (Obs.Report.num Float.infinity);
        Alcotest.(check string) "metrics inf" "null"
          (Obs.Metrics.json_num Float.neg_infinity);
        Alcotest.(check string) "openmetrics nan" "NaN"
          (Obs.Export.float_str Float.nan);
        Alcotest.(check string) "openmetrics +inf" "+Inf"
          (Obs.Export.float_str Float.infinity);
        Alcotest.(check string) "openmetrics -inf" "-Inf"
          (Obs.Export.float_str Float.neg_infinity);
        Alcotest.(check string) "plain text" "inf"
          (Obs.Canon.to_string Float.infinity);
        Alcotest.(check string) "plain text nan" "nan"
          (Obs.Canon.to_string Float.nan));
  ]

let suite =
  trace_tests @ metrics_tests @ export_tests @ concurrency_tests
  @ smoke_tests @ canon_tests
