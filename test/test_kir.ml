(* The portable kernel IR: lowering determinism, the KIR evaluator
   against the reference interpreter, the structural linter's accept
   and reject paths, and the schedule-local name table — two compiles
   in one process must print byte-identical kernels on every backend
   (the latent gensym-reuse class: a process-global counter would make
   the second compile's names differ). *)

let t name f = Alcotest.test_case name `Quick f

let flatten_src src =
  Streamit.Flatten.flatten (Frontend.Parser.parse_program src)

let compile g =
  match Swp_core.Compile.compile g with
  | Ok c -> c
  | Error m -> Alcotest.failf "compile: %s" m

let compile_bench name =
  match Benchmarks.Registry.find name with
  | None -> Alcotest.failf "unknown benchmark %s" name
  | Some e -> compile (Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()))

(* Small programs exercising distinct lowering shapes: a plain
   pipeline, a stateful filter, and a splitjoin (splitter/joiner
   nodes + multi-port buffers). *)
let pipeline_src =
  {|
filter A pop 0 push 1 { push(1.0); }
filter B pop 1 push 1 { push(pop() * 2.0 + 0.5); }
filter C pop 1 push 0 { let x = pop(); }
pipeline P { add A; add B; add C; }
|}

let stateful_src =
  {|
filter Src pop 0 push 1 {
  state acc = [0.0];
  acc[0] = acc[0] + 1.0;
  push(acc[0]);
}
filter Dbl pop 1 push 1 { push(pop() * 2.0); }
filter Sink pop 1 push 0 { let x = pop(); }
pipeline P { add Src; add Dbl; add Sink; }
|}

let splitjoin_src =
  {|
filter Src pop 0 push 2 { push(1.0); push(2.0); }
filter Lo pop 1 push 1 { push(pop() + 10.0); }
filter Hi pop 1 push 1 { push(pop() + 20.0); }
filter Sink pop 2 push 0 { let a = pop(); let b = pop(); }
splitjoin SJ { split roundrobin(1, 1); add Lo; add Hi; join roundrobin(1, 1); }
pipeline P { add Src; add SJ; add Sink; }
|}

let small_srcs =
  [ ("pipeline", pipeline_src); ("stateful", stateful_src);
    ("splitjoin", splitjoin_src) ]

let input i = Streamit.Types.VFloat (float_of_int i)

(* ---- lowering ------------------------------------------------------- *)

let lower_tests =
  [
    t "lowering is deterministic" (fun () ->
        List.iter
          (fun (name, src) ->
            let c = compile (flatten_src src) in
            let p1 = Kir.Lower.lower c and p2 = Kir.Lower.lower c in
            Alcotest.(check bool) (name ^ ": equal programs") true (p1 = p2))
          small_srcs);
    t "lowered shape matches the schedule" (fun () ->
        let c = compile (flatten_src pipeline_src) in
        let p = Kir.Lower.lower c in
        Alcotest.(check int) "stages"
          c.Swp_core.Compile.sizing.Swp_core.Buffer_layout.stages
          p.Kir.Ir.stages;
        Alcotest.(check int) "one buffer per edge"
          (List.length c.Swp_core.Compile.graph.Streamit.Graph.edges)
          (Array.length p.Kir.Ir.buffers);
        Alcotest.(check int) "one work fn per node"
          (Array.length c.Swp_core.Compile.graph.Streamit.Graph.nodes)
          (List.length p.Kir.Ir.work_fns);
        (* every fire's channel refs resolve *)
        List.iter
          (fun (case : Kir.Ir.sm_case) ->
            List.iter
              (fun (f : Kir.Ir.fire) ->
                List.iter
                  (fun r ->
                    match r with
                    | Kir.Ir.External -> ()
                    | Kir.Ir.Chan i ->
                      Alcotest.(check bool) "chan in range" true
                        (i >= 0 && i < Array.length p.Kir.Ir.buffers))
                  (f.Kir.Ir.f_ins @ f.Kir.Ir.f_outs))
              case.Kir.Ir.fires)
          p.Kir.Ir.cases);
  ]

(* ---- evaluator ------------------------------------------------------- *)

let eval_tests =
  [
    t "KIR eval agrees with the interpreter" (fun () ->
        List.iter
          (fun (name, src) ->
            let g = flatten_src src in
            let c = compile g in
            let iters = 3 in
            let scale = c.Swp_core.Compile.config.Swp_core.Select.scale in
            let want =
              Streamit.Interp.run_steady_states g ~input
                ~iters:(iters * scale)
            in
            let got = Kir.Eval.run (Kir.Lower.lower c) ~input ~iters in
            Alcotest.(check int)
              (name ^ ": token count")
              (List.length want) (List.length got);
            List.iteri
              (fun i (w, g) ->
                if not (Streamit.Types.equal_value w g) then
                  Alcotest.failf "%s: token %d: interp %s, kir-eval %s" name i
                    (Streamit.Types.string_of_value w)
                    (Streamit.Types.string_of_value g))
              (List.combine want got))
          small_srcs);
  ]

(* ---- linter ---------------------------------------------------------- *)

let corrupt_cases (src : string) =
  (* each mutation must be caught by the structural linter; pick the
     position in the comment-stripped text so the dropped character is
     real code, not comment prose the linter rightly ignores *)
  let stripped = Kir.Lint.strip src in
  let drop_last c =
    match String.rindex_opt stripped c with
    | None -> None
    | Some i ->
      Some
        (String.sub src 0 i
        ^ " "
        ^ String.sub src (i + 1) (String.length src - i - 1))
  in
  List.filter_map
    (fun (what, s) -> Option.map (fun s -> (what, s)) s)
    [ ("dropped brace", drop_last '}'); ("dropped paren", drop_last ')') ]

let lint_tests =
  [
    t "linter accepts every emitted backend" (fun () ->
        List.iter
          (fun (name, src) ->
            let p = Kir.Lower.lower (compile (flatten_src src)) in
            List.iter
              (fun target ->
                match Kir.Backend.emit_checked target p with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "%s: %s" name e)
              Kir.Ir.all_targets)
          small_srcs);
    t "linter rejects corrupted kernels" (fun () ->
        let p = Kir.Lower.lower (compile (flatten_src pipeline_src)) in
        List.iter
          (fun target ->
            let src = Kir.Backend.emit target p in
            List.iter
              (fun (what, bad) ->
                match Kir.Lint.check target p bad with
                | Error _ -> ()
                | Ok () ->
                  Alcotest.failf "%s: linter accepted %s"
                    (Kir.Ir.target_name target)
                    what)
              (corrupt_cases src))
          Kir.Ir.all_targets);
    t "linter rejects a barrier under a tid guard" (fun () ->
        let p = Kir.Lower.lower (compile (flatten_src pipeline_src)) in
        let src = Kir.Backend.emit Kir.Ir.Cuda p in
        (* push the first barrier inside tid-dependent control flow *)
        let pat = "__syncthreads();" in
        let i =
          let n = String.length src and m = String.length pat in
          let rec go i =
            if i + m > n then Alcotest.fail "no barrier in CUDA kernel"
            else if String.sub src i m = pat then i
            else go (i + 1)
          in
          go 0
        in
        let bad =
          String.sub src 0 i
          ^ "if (tid < 32) { __syncthreads(); }"
          ^ String.sub src (i + String.length pat)
              (String.length src - i - String.length pat)
        in
        match Kir.Lint.check Kir.Ir.Cuda p bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "linter accepted a tid-guarded barrier");
  ]

(* ---- schedule-local names (two compiles, one process) ---------------- *)

let name_tests =
  [
    t "two compiles in one process print identical bytes" (fun () ->
        (* a process-global gensym would give the second lowering
           different work-function names; the name table must be
           schedule-local *)
        List.iter
          (fun bench ->
            let emit () =
              Swp_core.Profile.clear_cache ();
              let p = Kir.Lower.lower (compile_bench bench) in
              List.map (fun t -> (t, Kir.Backend.emit t p)) Kir.Ir.all_targets
            in
            let first = emit () in
            let second = emit () in
            List.iter2
              (fun (t1, s1) (_, s2) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s byte-identical" bench
                     (Kir.Ir.target_name t1))
                  true (String.equal s1 s2))
              first second)
          [ "Bitonic"; "FMRadio" ]);
    t "collision-prone node names stay distinct" (fun () ->
        (* two filters whose names collide after c_ident sanitization
           must get distinct work-function names *)
        let src =
          {|
filter F_1 pop 0 push 1 { push(1.0); }
filter F:1 pop 1 push 1 { push(pop() * 2.0); }
filter Sink pop 1 push 0 { let x = pop(); }
pipeline P { add F_1; add F:1; add Sink; }
|}
        in
        match
          (try Some (compile (flatten_src src)) with _ -> None)
        with
        | None -> () (* frontend may reject the name; nothing to pin *)
        | Some c ->
          let p = Kir.Lower.lower c in
          let names =
            List.map (fun (w : Kir.Ir.work_fn) -> w.Kir.Ir.w_name)
              p.Kir.Ir.work_fns
          in
          Alcotest.(check int) "unique work-fn names"
            (List.length names)
            (List.length (List.sort_uniq compare names)));
  ]

let suite = lower_tests @ eval_tests @ lint_tests @ name_tests
