(* Property tests for the II-quality work: the sharpened/LP lower
   bounds, the portfolio search, and LNS refinement.

   All properties are checked over {!Check.Gen} streams (pinned seed
   ranges, so the suite is deterministic) plus the registry benchmarks
   that exercise the refinement path end to end:

   - every lower bound the search reports is actually below (or at) the
     II it achieves, whatever ladder rung paid for the schedule;
   - the sharpened combinatorial bound dominates the classic one, and
     the LP/cutting-plane bound dominates its combinatorial start while
     staying sound against the search's achieved II;
   - a refined (LNS) schedule still satisfies the full constraint
     system and the buffer-layout bijections of eqs. (9)-(11). *)

let t name f = Alcotest.test_case name `Quick f

(* Pipeline front half shared by the bound properties: generated stream
   -> graph -> rates -> profile -> config.  Seeds whose streams the
   pipeline legitimately rejects (oversized steady state, infeasible
   configuration) are skipped, mirroring the fuzz driver. *)
let config_of_seed seed =
  let s = Check.Gen.stream ~seed () in
  match (try Ok (Streamit.Flatten.flatten s) with Failure m -> Error m) with
  | Error _ -> None
  | Ok g -> (
    match Streamit.Sdf.steady_state g with
    | Error _ -> None
    | Ok rates
      when Array.fold_left ( + ) 0 rates.Streamit.Sdf.reps
           > Check.Gen.max_steady_firings ->
      None
    | Ok rates -> (
      let arch = Gpusim.Arch.geforce_8800_gts_512 in
      let profile =
        Swp_core.Profile.run arch g ~mode:Swp_core.Profile.Coalesced
      in
      match Swp_core.Select.select g rates profile with
      | Error _ -> None
      | Ok cfg -> Some (g, cfg, arch.Gpusim.Arch.num_sms)))

let seeds = List.init 40 (fun i -> 1000 + i)

let bound_le_achieved () =
  let checked = ref 0 in
  List.iter
    (fun seed ->
      match config_of_seed seed with
      | None -> ()
      | Some (g, _, _) -> (
        match Swp_core.Compile.compile g with
        | Error _ -> ()
        | Ok c ->
          incr checked;
          let st = c.Swp_core.Compile.search_stats in
          if
            st.Swp_core.Ii_search.lower_bound
            > st.Swp_core.Ii_search.achieved_ii
          then
            Alcotest.failf
              "seed %d: lower bound %d exceeds achieved II %d (quality %s)"
              seed st.Swp_core.Ii_search.lower_bound
              st.Swp_core.Ii_search.achieved_ii
              (Swp_core.Compile.quality_name c.Swp_core.Compile.quality)))
    seeds;
  if !checked < 5 then
    Alcotest.failf "only %d/%d seeds compiled: generator drifted?" !checked
      (List.length seeds)

let sharp_dominates_classic () =
  let checked = ref 0 in
  List.iter
    (fun seed ->
      match config_of_seed seed with
      | None -> ()
      | Some (g, cfg, num_sms) -> (
        try
          let classic =
            Swp_core.Mii.lower_bound ~level:Swp_core.Mii.Classic g cfg
              ~num_sms
          in
          let sharp =
            Swp_core.Mii.lower_bound ~level:Swp_core.Mii.Sharp g cfg ~num_sms
          in
          incr checked;
          if sharp < classic then
            Alcotest.failf "seed %d: sharp bound %d below classic bound %d"
              seed sharp classic
        with Swp_core.Mii.Unschedulable _ -> ()))
    seeds;
  if !checked < 5 then
    Alcotest.failf "only %d/%d seeds reached the bound: generator drifted?"
      !checked (List.length seeds)

(* The LP/cutting-plane bound: >= its combinatorial start by
   construction, and sound — never above an II the search actually
   achieves.  Generated streams carry profile-scale delays (IIs in the
   thousands), outside the magnitude gate the search applies, so this
   property is driven through small-delay variants of generated
   configs: the delays are rewritten to small values, which keeps the
   instance/dependence structure and makes every bound small enough for
   the exact-rational LP to be cheap. *)
let lp_bound_sound () =
  let checked = ref 0 in
  List.iter
    (fun seed ->
      match config_of_seed seed with
      | None -> ()
      | Some (g, cfg, _) -> (
        let cfg =
          {
            cfg with
            Swp_core.Select.delay =
              Array.map
                (fun d -> 1 + (d mod (3 + (seed mod 5))))
                cfg.Swp_core.Select.delay;
          }
        in
        let num_sms = 2 + (seed mod 3) in
        try
          let start = Swp_core.Mii.lower_bound g cfg ~num_sms in
          if
            Swp_core.Instances.num_instances cfg * num_sms <= 128
            && start <= 256
          then begin
            let lp = Swp_core.Mii.lp_bound g cfg ~num_sms ~start in
            incr checked;
            if lp < start then
              Alcotest.failf "seed %d: lp bound %d below its start %d" seed lp
                start;
            match Swp_core.Ii_search.search g cfg ~num_sms with
            | Error _ -> ()
            | Ok (_, st) ->
              let achieved = st.Swp_core.Ii_search.achieved_ii in
              if lp > achieved then
                Alcotest.failf
                  "seed %d: lp bound %d refutes an achieved schedule at II=%d"
                  seed lp achieved
          end
        with Swp_core.Mii.Unschedulable _ -> ()))
    seeds;
  if !checked < 3 then
    Alcotest.failf "only %d seeds exercised lp_bound: gate drifted?" !checked

(* Refinement end to end on the registry benchmarks whose first
   feasible candidate sits above the bound: the refined schedule must
   pass the full constraint-system validation and every structural
   invariant (incl. the (9)-(11) buffer-map bijections), and a refined
   search must have committed a feasible arm="lns" attempt. *)
let refined_benchmarks = [ "BitonicRec"; "DES"; "Filterbank" ]

let lns_refined_validates () =
  let refined = ref 0 in
  List.iter
    (fun name ->
      let e =
        match Benchmarks.Registry.find name with
        | Some e -> e
        | None -> Alcotest.failf "unknown benchmark %s" name
      in
      let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
      match Swp_core.Compile.compile g with
      | Error m -> Alcotest.failf "%s: compile failed: %s" name m
      | Ok c ->
        (match Swp_core.Swp_schedule.validate g c.Swp_core.Compile.schedule with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: schedule invalid: %s" name m);
        (match Check.Invariants.all c with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: invariant violated: %s" name m);
        let st = c.Swp_core.Compile.search_stats in
        if st.Swp_core.Ii_search.refined then begin
          incr refined;
          if
            not
              (List.exists
                 (fun (a : Swp_core.Ii_search.attempt) ->
                   a.Swp_core.Ii_search.arm = "lns"
                   && a.Swp_core.Ii_search.feasible)
                 st.Swp_core.Ii_search.attempt_log)
          then
            Alcotest.failf
              "%s: refined stats but no feasible lns attempt in the log" name
        end)
    refined_benchmarks;
  if !refined = 0 then
    Alcotest.fail
      "no benchmark exercised LNS refinement: the heuristic now achieves \
       the bound everywhere, pick harder refinement cases"

(* Disabling the portfolio must never improve the result: the racing
   arms only add candidates, so achieved II with the portfolio is <=
   achieved II without it, seed by seed. *)
let portfolio_no_worse () =
  let checked = ref 0 in
  List.iter
    (fun seed ->
      match config_of_seed seed with
      | None -> ()
      | Some (g, _, _) -> (
        match
          ( Swp_core.Compile.compile g,
            Swp_core.Compile.compile ~portfolio:false ~lns_rounds:0 g )
        with
        | Ok a, Ok b
          when a.Swp_core.Compile.quality <> Swp_core.Compile.Degraded
               && b.Swp_core.Compile.quality <> Swp_core.Compile.Degraded ->
          incr checked;
          let ii (c : Swp_core.Compile.compiled) =
            c.Swp_core.Compile.search_stats.Swp_core.Ii_search.achieved_ii
          in
          if ii a > ii b then
            Alcotest.failf
              "seed %d: portfolio worsened the II (%d with, %d without)" seed
              (ii a) (ii b)
        | _ -> ()))
    seeds;
  if !checked < 5 then
    Alcotest.failf "only %d/%d seeds compiled both ways: generator drifted?"
      !checked (List.length seeds)

let suite =
  [
    t "bound <= achieved II on generated streams" bound_le_achieved;
    t "sharp ResMII dominates classic" sharp_dominates_classic;
    t "lp bound >= start and sound vs achieved II" lp_bound_sound;
    t "refined schedules validate + invariants hold" lns_refined_validates;
    t "portfolio never worsens the achieved II" portfolio_no_worse;
  ]
