(* Tests for the LP substrate: linear expressions, the exact simplex and
   branch-and-bound — the CPLEX stand-in the scheduling ILP relies on. *)

open Numeric

let t name f = Alcotest.test_case name `Quick f
let q = Rat.of_int
let qq = Rat.of_ints
let check_rat = Alcotest.testable Rat.pp Rat.equal

(* --- Linexpr --- *)

let linexpr_tests =
  [
    t "terms merge and cancel" (fun () ->
        let e =
          Lp.Linexpr.of_terms [ (q 2, 0); (q 3, 1); (q (-2), 0) ]
        in
        Alcotest.(check (list int)) "vars" [ 1 ] (Lp.Linexpr.vars e);
        Alcotest.check check_rat "coef" (q 3) (Lp.Linexpr.coef e 1);
        Alcotest.check check_rat "absent" Rat.zero (Lp.Linexpr.coef e 0));
    t "eval" (fun () ->
        let e = Lp.Linexpr.of_terms ~const:(q 1) [ (q 2, 0); (q 3, 1) ] in
        let v = Lp.Linexpr.eval (fun i -> q (i + 1)) e in
        (* 1 + 2*1 + 3*2 = 9 *)
        Alcotest.check check_rat "val" (q 9) v);
    t "scale zero yields zero" (fun () ->
        let e = Lp.Linexpr.var 3 in
        Alcotest.(check bool) "const" true
          (Lp.Linexpr.is_constant (Lp.Linexpr.scale Rat.zero e)));
    t "map_vars merges collisions" (fun () ->
        let e = Lp.Linexpr.of_terms [ (q 1, 0); (q 2, 1) ] in
        let e' = Lp.Linexpr.map_vars (fun _ -> 5) e in
        Alcotest.check check_rat "merged" (q 3) (Lp.Linexpr.coef e' 5));
    t "pretty printing" (fun () ->
        let e = Lp.Linexpr.of_terms ~const:(q 7) [ (q 3, 0); (qq (-1) 2, 3) ] in
        Alcotest.(check string) "pp" "3 x0 - 1/2 x3 + 7" (Lp.Linexpr.to_string e));
  ]

(* --- Simplex --- *)

let solve_lp vars cstrs obj_dir obj =
  let p = Lp.Problem.create () in
  let ids = List.map (fun (name, kind) -> Lp.Problem.add_var p ~kind name) vars in
  List.iter
    (fun (terms, rel, rhs) ->
      let lhs = Lp.Linexpr.of_terms (List.map (fun (c, i) -> (q c, List.nth ids i)) terms) in
      Lp.Problem.add_constraint p lhs rel (Lp.Linexpr.of_int rhs))
    cstrs;
  Lp.Problem.set_objective p obj_dir
    (Lp.Linexpr.of_terms (List.map (fun (c, i) -> (q c, List.nth ids i)) obj));
  (p, ids)

let simplex_tests =
  [
    t "classic 2d maximum" (fun () ->
        let p, ids =
          solve_lp
            [ ("x", Lp.Problem.Continuous); ("y", Lp.Problem.Continuous) ]
            [
              ([ (1, 0); (1, 1) ], Lp.Problem.Le, 4);
              ([ (1, 0); (3, 1) ], Lp.Problem.Le, 6);
            ]
            `Maximize
            [ (3, 0); (2, 1) ]
        in
        match Lp.Simplex.solve p with
        | Lp.Solution.Optimal s ->
          Alcotest.check check_rat "obj" (q 12) s.objective;
          Alcotest.check check_rat "x" (q 4) s.values.(List.nth ids 0)
        | _ -> Alcotest.fail "expected optimal");
    t "minimization with equality" (fun () ->
        (* min x + y st x + y = 10, x - y >= 2 -> obj 10 *)
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Continuous); ("y", Lp.Problem.Continuous) ]
            [
              ([ (1, 0); (1, 1) ], Lp.Problem.Eq, 10);
              ([ (1, 0); (-1, 1) ], Lp.Problem.Ge, 2);
            ]
            `Minimize
            [ (1, 0); (1, 1) ]
        in
        match Lp.Simplex.solve p with
        | Lp.Solution.Optimal s -> Alcotest.check check_rat "obj" (q 10) s.objective
        | _ -> Alcotest.fail "expected optimal");
    t "infeasible detected" (fun () ->
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Continuous) ]
            [
              ([ (1, 0) ], Lp.Problem.Ge, 5);
              ([ (1, 0) ], Lp.Problem.Le, 3);
            ]
            `Minimize [ (1, 0) ]
        in
        match Lp.Simplex.solve p with
        | Lp.Solution.Infeasible -> ()
        | _ -> Alcotest.fail "expected infeasible");
    t "unbounded detected" (fun () ->
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Continuous) ]
            [ ([ (1, 0) ], Lp.Problem.Ge, 1) ]
            `Maximize [ (1, 0) ]
        in
        match Lp.Simplex.solve p with
        | Lp.Solution.Unbounded -> ()
        | _ -> Alcotest.fail "expected unbounded");
    t "free variables (negative optimum)" (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var p ~lb:None ~kind:Lp.Problem.Continuous "x" in
        Lp.Problem.add_constraint p (Lp.Linexpr.var x) Lp.Problem.Ge
          (Lp.Linexpr.of_int (-5));
        Lp.Problem.set_objective p `Minimize (Lp.Linexpr.var x);
        (match Lp.Simplex.solve p with
        | Lp.Solution.Optimal s -> Alcotest.check check_rat "x" (q (-5)) s.values.(x)
        | _ -> Alcotest.fail "expected optimal"));
    t "upper bounds honoured" (fun () ->
        let p = Lp.Problem.create () in
        let x =
          Lp.Problem.add_var p ~ub:(Some (q 3)) ~kind:Lp.Problem.Continuous "x"
        in
        Lp.Problem.set_objective p `Maximize (Lp.Linexpr.var x);
        (match Lp.Simplex.solve p with
        | Lp.Solution.Optimal s -> Alcotest.check check_rat "x" (q 3) s.values.(x)
        | _ -> Alcotest.fail "expected optimal"));
    t "exact rationals (no rounding)" (fun () ->
        (* max x st 3x <= 1 -> x = 1/3 exactly *)
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var p ~kind:Lp.Problem.Continuous "x" in
        Lp.Problem.add_constraint p
          (Lp.Linexpr.var ~coef:(q 3) x)
          Lp.Problem.Le (Lp.Linexpr.of_int 1);
        Lp.Problem.set_objective p `Maximize (Lp.Linexpr.var x);
        (match Lp.Simplex.solve p with
        | Lp.Solution.Optimal s -> Alcotest.check check_rat "x" (qq 1 3) s.values.(x)
        | _ -> Alcotest.fail "expected optimal"));
    t "degenerate problem terminates (Bland)" (fun () ->
        (* classic cycling-prone instance *)
        let p, _ =
          solve_lp
            [
              ("a", Lp.Problem.Continuous); ("b", Lp.Problem.Continuous);
              ("c", Lp.Problem.Continuous); ("d", Lp.Problem.Continuous);
            ]
            [
              ([ (1, 0); (-2, 1); (-1, 2) ], Lp.Problem.Le, 0);
              ([ (1, 0); (-1, 1); (1, 3) ], Lp.Problem.Le, 0);
              ([ (1, 0) ], Lp.Problem.Le, 1);
            ]
            `Maximize
            [ (3, 0); (-2, 1); (1, 2); (-1, 3) ]
        in
        match Lp.Simplex.solve p with
        | Lp.Solution.Optimal _ | Lp.Solution.Unbounded -> ()
        | _ -> Alcotest.fail "expected termination with optimal/unbounded");
  ]

(* --- Branch and bound --- *)

let bb_tests =
  [
    t "knapsack-style integer optimum" (fun () ->
        (* max x + y st 2x + 3y <= 12, 2x + y <= 6, ints -> 4 *)
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Integer); ("y", Lp.Problem.Integer) ]
            [
              ([ (2, 0); (3, 1) ], Lp.Problem.Le, 12);
              ([ (2, 0); (1, 1) ], Lp.Problem.Le, 6);
            ]
            `Maximize [ (1, 0); (1, 1) ]
        in
        match Lp.Branch_bound.solve p with
        | Lp.Solution.Optimal s, _ -> Alcotest.check check_rat "obj" (q 4) s.objective
        | _ -> Alcotest.fail "expected optimal");
    t "integrality gap forces branching" (fun () ->
        (* max x st 2x <= 5 -> LP 5/2, ILP 2 *)
        let p, ids =
          solve_lp [ ("x", Lp.Problem.Integer) ]
            [ ([ (2, 0) ], Lp.Problem.Le, 5) ]
            `Maximize [ (1, 0) ]
        in
        match Lp.Branch_bound.solve p with
        | Lp.Solution.Optimal s, stats ->
          Alcotest.(check int) "x" 2 (Lp.Solution.value_int s (List.nth ids 0));
          Alcotest.(check bool) "branched" true (stats.nodes_explored > 1)
        | _ -> Alcotest.fail "expected optimal");
    t "binary infeasibility" (fun () ->
        let p = Lp.Problem.create () in
        let b = Lp.Problem.add_var p ~kind:Lp.Problem.Binary "b" in
        Lp.Problem.add_constraint p (Lp.Linexpr.var b) Lp.Problem.Ge
          (Lp.Linexpr.of_int 2);
        (match Lp.Branch_bound.solve p with
        | Lp.Solution.Infeasible, _ -> ()
        | _ -> Alcotest.fail "expected infeasible"));
    t "feasibility problem stops at first solution" (fun () ->
        let p = Lp.Problem.create () in
        let xs =
          List.init 6 (fun i ->
              Lp.Problem.add_var p ~kind:Lp.Problem.Binary
                (Printf.sprintf "b%d" i))
        in
        (* sum must be exactly 3 *)
        Lp.Problem.add_constraint p
          (Lp.Linexpr.of_terms (List.map (fun x -> (Rat.one, x)) xs))
          Lp.Problem.Eq (Lp.Linexpr.of_int 3);
        (match Lp.Branch_bound.solve p with
        | Lp.Solution.Optimal s, _ ->
          let total =
            List.fold_left (fun acc x -> acc + Lp.Solution.value_int s x) 0 xs
          in
          Alcotest.(check int) "sum" 3 total
        | _ -> Alcotest.fail "expected a feasible point"));
    t "budget exhaustion reported" (fun () ->
        let p = Lp.Problem.create () in
        let xs =
          List.init 14 (fun i ->
              Lp.Problem.add_var p ~kind:Lp.Problem.Binary
                (Printf.sprintf "b%d" i))
        in
        (* an infeasible parity-style system that needs search to refute *)
        Lp.Problem.add_constraint p
          (Lp.Linexpr.of_terms (List.map (fun x -> (q 2, x)) xs))
          Lp.Problem.Eq (Lp.Linexpr.of_int 13);
        (match Lp.Branch_bound.solve ~node_budget:3 p with
        | Lp.Solution.Budget_exhausted _, stats ->
          Alcotest.(check int) "nodes" 3 stats.nodes_explored
        | Lp.Solution.Infeasible, _ -> () (* LP relaxation may already refute *)
        | _ -> Alcotest.fail "expected budget exhaustion or infeasible"));
    t "solution validates against problem" (fun () ->
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Integer); ("y", Lp.Problem.Binary) ]
            [ ([ (1, 0); (7, 1) ], Lp.Problem.Le, 9) ]
            `Maximize [ (2, 0); (11, 1) ]
        in
        match Lp.Branch_bound.solve p with
        | Lp.Solution.Optimal s, _ ->
          (match Lp.Problem.check_assignment p (fun v -> s.values.(v)) with
          | Ok () -> ()
          | Error m -> Alcotest.fail m)
        | _ -> Alcotest.fail "expected optimal");
  ]

(* --- Warm start and solver statistics --- *)

let feasibility_problem () =
  let p = Lp.Problem.create () in
  let xs =
    List.init 6 (fun i ->
        Lp.Problem.add_var p ~kind:Lp.Problem.Binary (Printf.sprintf "b%d" i))
  in
  Lp.Problem.add_constraint p
    (Lp.Linexpr.of_terms (List.map (fun x -> (Rat.one, x)) xs))
    Lp.Problem.Eq (Lp.Linexpr.of_int 3);
  (p, xs)

let warm_start_tests =
  [
    t "valid incumbent short-circuits a feasibility query" (fun () ->
        let p, xs = feasibility_problem () in
        let chosen = [ List.nth xs 1; List.nth xs 3; List.nth xs 4 ] in
        let seed v = if List.mem v chosen then Rat.one else Rat.zero in
        (match Lp.Branch_bound.solve ~incumbent:seed p with
        | Lp.Solution.Optimal s, stats ->
          Alcotest.(check bool) "seeded" true stats.Lp.Branch_bound.seeded;
          Alcotest.(check int) "no nodes explored" 0 stats.nodes_explored;
          List.iter
            (fun x ->
              Alcotest.check check_rat "returned the seed" (seed x)
                s.values.(x))
            xs
        | _ -> Alcotest.fail "expected the seeded solution"));
    t "invalid incumbent is ignored" (fun () ->
        let p, xs = feasibility_problem () in
        (* all-zero violates the sum-to-3 equality *)
        (match Lp.Branch_bound.solve ~incumbent:(fun _ -> Rat.zero) p with
        | Lp.Solution.Optimal s, stats ->
          Alcotest.(check bool) "not seeded" false stats.Lp.Branch_bound.seeded;
          let total =
            List.fold_left (fun acc x -> acc + Lp.Solution.value_int s x) 0 xs
          in
          Alcotest.(check int) "still solved" 3 total
        | _ -> Alcotest.fail "expected a feasible point"));
    t "incumbent never worsens an optimisation" (fun () ->
        (* the knapsack from above, seeded with the feasible but
           suboptimal origin: search must still reach the optimum *)
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Integer); ("y", Lp.Problem.Integer) ]
            [
              ([ (2, 0); (3, 1) ], Lp.Problem.Le, 12);
              ([ (2, 0); (1, 1) ], Lp.Problem.Le, 6);
            ]
            `Maximize [ (1, 0); (1, 1) ]
        in
        match Lp.Branch_bound.solve ~incumbent:(fun _ -> Rat.zero) p with
        | Lp.Solution.Optimal s, stats ->
          Alcotest.(check bool) "seeded" true stats.Lp.Branch_bound.seeded;
          Alcotest.check check_rat "optimum unchanged" (q 4) s.objective
        | _ -> Alcotest.fail "expected optimal");
    t "lp stats plumbed through solve_with_bounds" (fun () ->
        let p, _ =
          solve_lp
            [ ("x", Lp.Problem.Continuous); ("y", Lp.Problem.Continuous) ]
            [
              ([ (1, 0); (1, 1) ], Lp.Problem.Le, 4);
              ([ (1, 0); (3, 1) ], Lp.Problem.Le, 6);
            ]
            `Maximize
            [ (3, 0); (2, 1) ]
        in
        let n = Lp.Problem.num_vars p in
        let stats = ref Lp.Solution.empty_lp_stats in
        match
          Lp.Simplex.solve_with_bounds ~stats p
            ~lb:(Array.init n (Lp.Problem.var_lb p))
            ~ub:(Array.init n (Lp.Problem.var_ub p))
        with
        | Lp.Solution.Optimal s ->
          let st = !stats in
          Alcotest.(check bool) "pivoted" true (st.Lp.Solution.pivots > 0);
          Alcotest.(check int) "solution carries the same count"
            st.Lp.Solution.pivots s.lp.pivots;
          Alcotest.(check bool) "dimensions recorded" true
            (st.tableau_rows > 0 && st.tableau_cols > 0)
        | _ -> Alcotest.fail "expected optimal");
  ]

(* --- Sparse vs dense cross-validation --- *)

let rat_arrays_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if not (Rat.equal x b.(i)) then ok := false) a;
       !ok
     end

(* Both simplex cores make identical pivot choices, so agreement is
   required down to the exact values, not just the outcome class. *)
let outcomes_identical o1 o2 =
  match (o1, o2) with
  | Lp.Solution.Optimal a, Lp.Solution.Optimal b ->
    Rat.equal a.Lp.Solution.objective b.Lp.Solution.objective
    && rat_arrays_equal a.values b.values
  | Lp.Solution.Infeasible, Lp.Solution.Infeasible -> true
  | Lp.Solution.Unbounded, Lp.Solution.Unbounded -> true
  | Lp.Solution.Budget_exhausted _, Lp.Solution.Budget_exhausted _ -> true
  | _ -> false

let random_lp_cross_prop =
  let gen =
    QCheck.Gen.(
      map3
        (fun ncstr coefs (rels, rhss, maximize) ->
          (ncstr, coefs, rels, rhss, maximize))
        (int_range 1 4)
        (* 4 rows of 3 constraint coefficients + 3 objective coefficients *)
        (list_size (return 15) (int_range (-4) 4))
        (triple
           (list_size (return 4) (int_range 0 2))
           (list_size (return 4) (int_range (-6) 12))
           bool))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random LPs: sparse and dense simplex agree exactly" ~count:120
       (QCheck.make gen)
       (fun (ncstr, coefs, rels, rhss, maximize) ->
         let p = Lp.Problem.create () in
         let xs =
           List.init 3 (fun i ->
               Lp.Problem.add_var p ~kind:Lp.Problem.Continuous
                 ~ub:(Some (q 20))
                 (Printf.sprintf "x%d" i))
         in
         let coef i j = List.nth coefs ((i * 3) + j) in
         for i = 0 to ncstr - 1 do
           let rel =
             match List.nth rels i with
             | 0 -> Lp.Problem.Le
             | 1 -> Lp.Problem.Ge
             | _ -> Lp.Problem.Eq
           in
           Lp.Problem.add_constraint p
             (Lp.Linexpr.of_terms
                (List.mapi (fun j x -> (q (coef i j), x)) xs))
             rel
             (Lp.Linexpr.of_int (List.nth rhss i))
         done;
         Lp.Problem.set_objective p
           (if maximize then `Maximize else `Minimize)
           (Lp.Linexpr.of_terms
              (List.mapi (fun j x -> (q (List.nth coefs (12 + j)), x)) xs));
         outcomes_identical (Lp.Simplex.solve p) (Lp.Simplex.solve_reference p)))

(* Random small MILPs: any Optimal outcome must satisfy the problem. *)
let random_milp_prop =
  let gen =
    QCheck.Gen.(
      let small = int_range (-4) 4 in
      map3
        (fun ncstr coefs rhss -> (ncstr, coefs, rhss))
        (int_range 1 4)
        (list_size (return 12) small)
        (list_size (return 4) (int_range (-6) 12)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random MILP solutions verify" ~count:60
       (QCheck.make gen) (fun (ncstr, coefs, rhss) ->
         let p = Lp.Problem.create () in
         let xs =
           List.init 3 (fun i ->
               Lp.Problem.add_var p ~kind:Lp.Problem.Integer
                 ~ub:(Some (q 10))
                 (Printf.sprintf "x%d" i))
         in
         let coef i j = List.nth coefs ((i * 3) + j) in
         for i = 0 to ncstr - 1 do
           Lp.Problem.add_constraint p
             (Lp.Linexpr.of_terms
                (List.mapi (fun j x -> (q (coef i j), x)) xs))
             Lp.Problem.Le
             (Lp.Linexpr.of_int (List.nth rhss i))
         done;
         Lp.Problem.set_objective p `Maximize
           (Lp.Linexpr.of_terms (List.map (fun x -> (Rat.one, x)) xs));
         match Lp.Branch_bound.solve ~node_budget:500 p with
         | Lp.Solution.Optimal s, _ ->
           Lp.Problem.check_assignment p (fun v -> s.values.(v)) = Ok ()
         | _ -> true))

(* The full branch-and-bound search over the dense reference LP core must
   take identical branching decisions and land on the identical answer. *)
let random_milp_cross_prop =
  let gen =
    QCheck.Gen.(
      let small = int_range (-4) 4 in
      map3
        (fun ncstr coefs rhss -> (ncstr, coefs, rhss))
        (int_range 1 4)
        (list_size (return 12) small)
        (list_size (return 4) (int_range (-6) 12)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random MILPs: branch-and-bound agrees across LP cores"
       ~count:40 (QCheck.make gen) (fun (ncstr, coefs, rhss) ->
         let p = Lp.Problem.create () in
         let xs =
           List.init 3 (fun i ->
               Lp.Problem.add_var p ~kind:Lp.Problem.Integer
                 ~ub:(Some (q 10))
                 (Printf.sprintf "x%d" i))
         in
         let coef i j = List.nth coefs ((i * 3) + j) in
         for i = 0 to ncstr - 1 do
           Lp.Problem.add_constraint p
             (Lp.Linexpr.of_terms
                (List.mapi (fun j x -> (q (coef i j), x)) xs))
             Lp.Problem.Le
             (Lp.Linexpr.of_int (List.nth rhss i))
         done;
         Lp.Problem.set_objective p `Maximize
           (Lp.Linexpr.of_terms (List.map (fun x -> (Rat.one, x)) xs));
         let o1, _ = Lp.Branch_bound.solve ~node_budget:500 p in
         let o2, _ =
           Lp.Branch_bound.solve ~node_budget:500 ~use_reference_lp:true p
         in
         outcomes_identical o1 o2))

let suite =
  linexpr_tests @ simplex_tests @ bb_tests @ warm_start_tests
  @ [ random_lp_cross_prop; random_milp_prop; random_milp_cross_prop ]
