// streamit_gpu artifact (wgsl)
// quality: heuristic (completed)
// II: 9011 (lower bound 9011, binding no_wrap)
// schedule signature: 247dd07badbc6fc1ccf635d65da9d027
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_0_0__2_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_2_0__1_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_0_1__3_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_3_0__1_1: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_0_2__4_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_4_0__1_2: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_0_3__5_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_5_0__1_3: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_6_0__8_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_8_0__7_0: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_6_1__9_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_9_0__7_1: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_10_0__12_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_12_0__11_0: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_10_1__13_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_13_0__11_1: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_10_2__14_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_14_0__11_2: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_10_3__15_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_15_0__11_3: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_17_0__19_0: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_19_0__18_0: array<f32>;
@group(0) @binding(22) var<storage, read_write> buf_17_1__20_0: array<f32>;
@group(0) @binding(23) var<storage, read_write> buf_20_0__18_1: array<f32>;
@group(0) @binding(24) var<storage, read_write> buf_21_0__23_0: array<f32>;
@group(0) @binding(25) var<storage, read_write> buf_23_0__22_0: array<f32>;
@group(0) @binding(26) var<storage, read_write> buf_21_1__24_0: array<f32>;
@group(0) @binding(27) var<storage, read_write> buf_24_0__22_1: array<f32>;
@group(0) @binding(28) var<storage, read_write> buf_21_2__25_0: array<f32>;
@group(0) @binding(29) var<storage, read_write> buf_25_0__22_2: array<f32>;
@group(0) @binding(30) var<storage, read_write> buf_21_3__26_0: array<f32>;
@group(0) @binding(31) var<storage, read_write> buf_26_0__22_3: array<f32>;
@group(0) @binding(32) var<storage, read_write> buf_1_0__6_0: array<f32>;
@group(0) @binding(33) var<storage, read_write> buf_7_0__10_0: array<f32>;
@group(0) @binding(34) var<storage, read_write> buf_11_0__16_0: array<f32>;
@group(0) @binding(35) var<storage, read_write> buf_16_0__17_0: array<f32>;
@group(0) @binding(36) var<storage, read_write> buf_18_0__21_0: array<f32>;
@group(0) @binding(37) var<storage, read> stream_in: array<f32>;
@group(0) @binding(38) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(39) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 16>;

fn region_0(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_1(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 4096; }
fn region_2(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_3(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_4(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_5(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_6(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 2048; }
fn region_7(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 4096; }
fn region_8(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 2048; }
fn region_9(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 2048; }
fn region_10(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_11(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 4096; }
fn region_12(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_13(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_14(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_15(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_16(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 4096; }
fn region_17(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 2048; }
fn region_18(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 4096; }
fn region_19(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 2048; }
fn region_20(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 2048; }
fn region_21(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_22(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 0; }
fn region_23(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_24(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_25(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }
fn region_26(it: i32) -> i32 { return ((it % 17) + 17) % 17 * 1024; }

fn work_split_stage_p1_d1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_stage_p1_d1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEp1_b0_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_2_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp1_b1_d1_desc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_3_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp1_b2_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_0_2__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_4_0__1_2[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp1_b3_d1_desc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_0_3__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_5_0__1_3[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_split_stage_p2_d2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_1_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_stage_p2_d2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEp2_b0_d2_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 4>;
  for (var j: i32 = 0; j < 4; j++) {
    let _t1: i32 = i32(buf_6_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 2; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 2)];
    w[j] = min(a, b);
    w[(j + 2)] = max(a, b);
  }
  for (var j: i32 = 0; j < 4; j++) {
    buf_8_0__7_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp2_b1_d2_desc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 4>;
  for (var j: i32 = 0; j < 4; j++) {
    let _t1: i32 = i32(buf_6_1__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 2; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 2)];
    w[j] = max(a, b);
    w[(j + 2)] = min(a, b);
  }
  for (var j: i32 = 0; j < 4; j++) {
    buf_9_0__7_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_split_stage_p2_d1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_stage_p2_d1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_11_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEp2_b0_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp2_b1_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp2_b2_d1_desc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_10_2__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_14_0__11_2[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp2_b3_d1_desc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_10_3__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_15_0__11_3[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp3_d4_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: i32 = i32(buf_11_0__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 4; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 4)];
    w[j] = min(a, b);
    w[(j + 4)] = max(a, b);
  }
  for (var j: i32 = 0; j < 8; j++) {
    buf_16_0__17_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_split_stage_p3_d2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_16_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_17_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_stage_p3_d2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_19_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEp3_b0_d2_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 4>;
  for (var j: i32 = 0; j < 4; j++) {
    let _t1: i32 = i32(buf_17_0__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 2; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 2)];
    w[j] = min(a, b);
    w[(j + 2)] = max(a, b);
  }
  for (var j: i32 = 0; j < 4; j++) {
    buf_19_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp3_b1_d2_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 4>;
  for (var j: i32 = 0; j < 4; j++) {
    let _t1: i32 = i32(buf_17_1__20_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 2; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 2)];
    w[j] = min(a, b);
    w[(j + 2)] = max(a, b);
  }
  for (var j: i32 = 0; j < 4; j++) {
    buf_20_0__18_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_split_stage_p3_d1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_18_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_21_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_stage_p3_d1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_23_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEp3_b0_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_21_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_23_0__22_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp3_b1_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_21_1__24_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_24_0__22_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp3_b2_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_21_2__25_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_25_0__22_2[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_CEp3_b3_d1_asc(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var w: array<i32, 2>;
  for (var j: i32 = 0; j < 2; j++) {
    let _t1: i32 = i32(buf_21_3__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
    w[j] = _t1;
  }
  for (var j: i32 = 0; j < 1; j++) {
    var a: f32 = w[j];
    var b: f32 = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (var j: i32 = 0; j < 2; j++) {
    buf_26_0__22_3[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(w[j]); _push++;
  }
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 16)
  if tid == 0 { for (var s: i32 = 0; s < 16; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 16; it++) {
    if tid == 0 {
      for (var s: i32 = 15; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (CEp3_d4_asc, k=0) o=0 f=9 threads=512
        if stage_on[9] != 0 && tid < 512 {
          work_CEp3_d4_asc(region_16(it - 9), region_16(it - 9), tid);
        }
      }
      case 1: {
        // (CEp2_b0_d2_asc, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_CEp2_b0_d2_asc(region_8(it - 4), region_8(it - 4), tid);
        }
        // (split_stage_p1_d1, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_stage_p1_d1(region_0(it - 0), region_0(it - 0), tid);
        }
      }
      case 2: {
        // (CEp2_b1_d2_desc, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_CEp2_b1_d2_desc(region_9(it - 4), region_9(it - 4), tid);
        }
        // (join_stage_p1_d1, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_stage_p1_d1(region_1(it - 2), region_1(it - 2), tid);
        }
      }
      case 3: {
        // (CEp3_b0_d2_asc, k=0) o=0 f=11 threads=512
        if stage_on[11] != 0 && tid < 512 {
          work_CEp3_b0_d2_asc(region_19(it - 11), region_19(it - 11), tid);
        }
        // (CEp1_b0_d1_asc, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_CEp1_b0_d1_asc(region_2(it - 1), region_2(it - 1), tid);
        }
      }
      case 4: {
        // (CEp3_b1_d2_asc, k=0) o=0 f=11 threads=512
        if stage_on[11] != 0 && tid < 512 {
          work_CEp3_b1_d2_asc(region_20(it - 11), region_20(it - 11), tid);
        }
        // (CEp1_b1_d1_desc, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_CEp1_b1_d1_desc(region_3(it - 1), region_3(it - 1), tid);
        }
      }
      case 5: {
        // (split_stage_p2_d2, k=0) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_stage_p2_d2(region_6(it - 3), region_6(it - 3), tid);
        }
        // (CEp1_b3_d1_desc, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_CEp1_b3_d1_desc(region_5(it - 1), region_5(it - 1), tid);
        }
        // (CEp1_b2_d1_asc, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_CEp1_b2_d1_asc(region_4(it - 1), region_4(it - 1), tid);
        }
      }
      case 6: {
        // (join_stage_p2_d2, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_stage_p2_d2(region_7(it - 5), region_7(it - 5), tid);
        }
        // (join_stage_p2_d1, k=0) o=2610 f=7 threads=512
        if stage_on[7] != 0 && tid < 512 {
          work_join_stage_p2_d1(region_11(it - 7), region_11(it - 7), tid);
        }
        // (split_stage_p2_d1, k=0) o=2610 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_split_stage_p2_d1(region_10(it - 5), region_10(it - 5), tid);
        }
      }
      case 7: {
        // (CEp2_b2_d1_desc, k=0) o=2610 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_CEp2_b2_d1_desc(region_14(it - 6), region_14(it - 6), tid);
        }
        // (CEp2_b1_d1_asc, k=0) o=2610 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_CEp2_b1_d1_asc(region_13(it - 6), region_13(it - 6), tid);
        }
        // (CEp2_b0_d1_asc, k=0) o=2610 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_CEp2_b0_d1_asc(region_12(it - 6), region_12(it - 6), tid);
        }
      }
      case 8: {
        // (join_stage_p3_d2, k=0) o=0 f=12 threads=512
        if stage_on[12] != 0 && tid < 512 {
          work_join_stage_p3_d2(region_18(it - 12), region_18(it - 12), tid);
        }
        // (split_stage_p3_d2, k=0) o=0 f=10 threads=512
        if stage_on[10] != 0 && tid < 512 {
          work_split_stage_p3_d2(region_17(it - 10), region_17(it - 10), tid);
        }
        // (CEp2_b3_d1_desc, k=0) o=2610 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_CEp2_b3_d1_desc(region_15(it - 6), region_15(it - 6), tid);
        }
      }
      case 9: {
        // (join_stage_p3_d1, k=0) o=0 f=15 threads=512
        if stage_on[15] != 0 && tid < 512 {
          work_join_stage_p3_d1(region_22(it - 15), region_22(it - 15), tid);
        }
        // (split_stage_p3_d1, k=0) o=0 f=13 threads=512
        if stage_on[13] != 0 && tid < 512 {
          work_split_stage_p3_d1(region_21(it - 13), region_21(it - 13), tid);
        }
        // (CEp3_b0_d1_asc, k=0) o=2610 f=13 threads=512
        if stage_on[13] != 0 && tid < 512 {
          work_CEp3_b0_d1_asc(region_23(it - 13), region_23(it - 13), tid);
        }
      }
      case 10: {
        // (CEp3_b3_d1_asc, k=0) o=0 f=14 threads=512
        if stage_on[14] != 0 && tid < 512 {
          work_CEp3_b3_d1_asc(region_26(it - 14), region_26(it - 14), tid);
        }
        // (CEp3_b2_d1_asc, k=0) o=0 f=14 threads=512
        if stage_on[14] != 0 && tid < 512 {
          work_CEp3_b2_d1_asc(region_25(it - 14), region_25(it - 14), tid);
        }
        // (CEp3_b1_d1_asc, k=0) o=0 f=14 threads=512
        if stage_on[14] != 0 && tid < 512 {
          work_CEp3_b1_d1_asc(region_24(it - 14), region_24(it - 14), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
