/* streamit_gpu artifact (opencl)
 * quality: refined (completed)
 * II: 142126 (lower bound 141771, binding res_mii)
 * schedule signature: 58bd7959f63b54da3099eb7a355b09aa
 * program-scope __global state requires OpenCL C 2.0
 */

static inline int region_0(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_1(int it) { return ((it % 8) + 8) % 8 * 32768; }
static inline int region_2(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_3(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_4(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_5(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_6(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_7(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_8(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_9(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_10(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_11(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_12(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_13(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_14(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_15(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_16(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_17(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_18(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_19(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_20(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_21(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_22(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_23(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_24(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_25(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_26(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_27(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_28(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_29(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_30(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_31(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_32(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_33(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_34(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_35(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_36(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_37(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_38(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_39(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_40(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_41(int it) { return ((it % 8) + 8) % 8 * 4096; }
static inline int region_42(int it) { return ((it % 8) + 8) % 8 * 0; }

static void work_split_bank(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bank(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis0_taps[28] = { -0.00234461681f, -0.00320814694f, -0.00476149529f, -0.00657152888f, -0.00755257784f, -0.00614969504f, -0.000749004059f, 0.0097911405f, 0.0256479474f, 0.0457454255f, 0.0677848349f, 0.0886207813f, 0.104906087f, 0.113843569f, 0.113843569f, 0.104906087f, 0.0886207813f, 0.0677848349f, 0.0457454255f, 0.0256479474f, 0.0097911405f, -0.000749004059f, -0.00614969504f, -0.00755257784f, -0.00657152888f, -0.00476149529f, -0.00320814694f, -0.00234461681f };
static void work_Analysis0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis0_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis0_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis0_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis1_taps[28] = { -0.000174311059f, 0.001407292f, 0.00486573025f, 0.00998395108f, 0.0131515074f, 0.00774164696f, -0.0112828683f, -0.0410606607f, -0.0682613149f, -0.0742631754f, -0.0465440444f, 0.0108755976f, 0.0759894583f, 0.119054028f, 0.119054028f, 0.0759894583f, 0.0108755976f, -0.0465440444f, -0.0742631754f, -0.0682613149f, -0.0410606607f, -0.0112828683f, 0.00774164696f, 0.0131515074f, 0.00998395108f, 0.00486573025f, 0.001407292f, -0.000174311059f };
static void work_Analysis1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis1_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis1_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis1_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis2_taps[28] = { 0.0013747011f, 0.00285681757f, 0.00160155673f, -0.00636439783f, -0.0169314389f, -0.0125717525f, 0.018322384f, 0.0528620826f, 0.0435140518f, -0.0244437489f, -0.0944848999f, -0.0857702088f, 0.0117407759f, 0.10972082f, 0.10972082f, 0.0117407759f, -0.0857702088f, -0.0944848999f, -0.0244437489f, 0.0435140518f, 0.0528620826f, 0.018322384f, -0.0125717525f, -0.0169314389f, -0.00636439783f, 0.00160155673f, 0.00285681757f, 0.0013747011f };
static void work_Analysis2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis2_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis2_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis2_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis3_taps[28] = { 0.00170179708f, -0.000292617082f, -0.00549062669f, -0.00291221111f, 0.0150044465f, 0.0169187326f, -0.0246577806f, -0.0468457699f, 0.0199110911f, 0.0838006531f, 0.00967786533f, -0.106178347f, -0.0564652615f, 0.0961711032f, 0.0961711032f, -0.0564652615f, -0.106178347f, 0.00967786533f, 0.0838006531f, 0.0199110911f, -0.0468457699f, -0.0246577806f, 0.0169187326f, 0.0150044465f, -0.00291221111f, -0.00549062669f, -0.000292617082f, 0.00170179708f };
static void work_Analysis3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis3_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis3_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis3_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis4_taps[28] = { 0.0005162345f, -0.00297099109f, 0.000540779528f, 0.00960027344f, -0.00802004375f, -0.0206155354f, 0.0300455926f, 0.0250395857f, -0.0656380709f, -0.00825364393f, 0.0982610156f, -0.0322088495f, -0.105639074f, 0.0789255847f, 0.0789255847f, -0.105639074f, -0.0322088495f, 0.0982610156f, -0.00825364393f, -0.0656380709f, 0.0250395857f, 0.0300455926f, -0.0206155354f, -0.00802004375f, 0.00960027344f, 0.000540779528f, -0.00297099109f, 0.0005162345f };
static void work_Analysis4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis4_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis4_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis4_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis5_taps[28] = { -0.00112818804f, -0.000866606136f, 0.00527962499f, -0.0077550412f, -0.00166760118f, 0.0235200946f, -0.0342787694f, 0.0052064607f, 0.0530220256f, -0.080580241f, 0.028661681f, 0.0703897913f, -0.119206098f, 0.0586470002f, 0.0586470002f, -0.119206098f, 0.0703897913f, 0.028661681f, -0.080580241f, 0.0530220256f, 0.0052064607f, -0.0342787694f, 0.0235200946f, -0.00166760118f, -0.0077550412f, 0.00527962499f, -0.000866606136f, -0.00112818804f };
static void work_Analysis5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis5_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis5_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis5_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis6_taps[28] = { -0.00176980988f, 0.00263285815f, -0.00260078701f, -0.000983333353f, 0.0107931632f, -0.0255207898f, 0.0371946322f, -0.0336976134f, 0.0067231527f, 0.0396944943f, -0.0870777825f, 0.110421795f, -0.0925934229f, 0.0361146444f, 0.0361146444f, -0.0925934229f, 0.110421795f, -0.0870777825f, 0.0396944943f, 0.0067231527f, -0.0336976134f, 0.0371946322f, -0.0255207898f, 0.0107931632f, -0.000983333353f, -0.00260078701f, 0.00263285815f, -0.00176980988f };
static void work_Analysis6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis6_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis6_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis6_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

__constant float Analysis7_taps[28] = { -0.00083831934f, 0.00189389643f, -0.00426484824f, 0.00884766268f, -0.0162807732f, 0.0265407354f, -0.0386811262f, 0.0508306224f, -0.0604923926f, 0.0650922177f, -0.0626377463f, 0.0523043335f, -0.0347711363f, 0.0121944231f, 0.0121944231f, -0.0347711363f, 0.0523043335f, -0.0626377463f, 0.0650922177f, -0.0604923926f, 0.0508306224f, -0.0386811262f, 0.0265407354f, -0.0162807732f, 0.00884766268f, -0.00426484824f, 0.00189389643f, -0.00083831934f };
static void work_Analysis7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis7_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Down7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d0 = _t2;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d1 = _t3;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d2 = _t4;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d3 = _t5;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d4 = _t6;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d5 = _t7;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  float _d6 = _t8;
  (void)_pop; (void)_push;
}

static void work_Up7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = 0.0f; _push++;
  (void)_pop; (void)_push;
}

__constant float Synthesis7_taps[28] = { 0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f };
static void work_Synthesis7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis7_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Gain7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

static void work_Combine(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    acc = (acc + _t1);
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  (void)_pop; (void)_push;
}

__kernel void swp_kernel(__global float* buf_2_0__3_0, __global float* buf_3_0__4_0, __global float* buf_4_0__5_0, __global float* buf_5_0__6_0, __global float* buf_0_0__2_0, __global float* buf_6_0__1_0, __global float* buf_7_0__8_0, __global float* buf_8_0__9_0, __global float* buf_9_0__10_0, __global float* buf_10_0__11_0, __global float* buf_0_1__7_0, __global float* buf_11_0__1_1, __global float* buf_12_0__13_0, __global float* buf_13_0__14_0, __global float* buf_14_0__15_0, __global float* buf_15_0__16_0, __global float* buf_0_2__12_0, __global float* buf_16_0__1_2, __global float* buf_17_0__18_0, __global float* buf_18_0__19_0, __global float* buf_19_0__20_0, __global float* buf_20_0__21_0, __global float* buf_0_3__17_0, __global float* buf_21_0__1_3, __global float* buf_22_0__23_0, __global float* buf_23_0__24_0, __global float* buf_24_0__25_0, __global float* buf_25_0__26_0, __global float* buf_0_4__22_0, __global float* buf_26_0__1_4, __global float* buf_27_0__28_0, __global float* buf_28_0__29_0, __global float* buf_29_0__30_0, __global float* buf_30_0__31_0, __global float* buf_0_5__27_0, __global float* buf_31_0__1_5, __global float* buf_32_0__33_0, __global float* buf_33_0__34_0, __global float* buf_34_0__35_0, __global float* buf_35_0__36_0, __global float* buf_0_6__32_0, __global float* buf_36_0__1_6, __global float* buf_37_0__38_0, __global float* buf_38_0__39_0, __global float* buf_39_0__40_0, __global float* buf_40_0__41_0, __global float* buf_0_7__37_0, __global float* buf_41_0__1_7, __global float* buf_1_0__42_0, __global const float* stream_in, __global float* stream_out, int iterations)
{
  int tid = (int)get_local_id(0);
  int sm = (int)get_group_id(0);
  /* staging predicates, one per pipeline stage (depth 7) */
  __local int stage_on[7];
  if (tid == 0) for (int s = 0; s < 7; s++) stage_on[s] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int it = 0; it < iterations + 7; it++) {
    if (tid == 0) { for (int s = 6; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    barrier(CLK_LOCAL_MEM_FENCE);
    switch (sm) {
    case 0: {
      /* (Analysis0, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Analysis0, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__3_0 + region_2(it - 1), tid);
      /* (Combine, k=1) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Combine, k=0) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Gain0, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      /* (Gain0, k=1) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      /* (Gain0, k=0) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      break; }
    case 1: {
      /* (split_bank, k=1) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (Combine, k=3) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Combine, k=2) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Synthesis0, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      /* (Synthesis0, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis0(buf_4_0__5_0 + region_5(it - 3), buf_5_0__6_0 + region_5(it - 3), tid);
      break; }
    case 2: {
      /* (Analysis1, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (Analysis1, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis1(buf_0_1__7_0 + region_7(it - 1), buf_7_0__8_0 + region_7(it - 1), tid);
      /* (split_bank, k=2) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (Combine, k=5) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Combine, k=4) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      break; }
    case 3: {
      /* (split_bank, k=3) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (Combine, k=7) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Combine, k=6) o=1048 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_Combine(buf_1_0__42_0 + region_42(it - 6), stream_out + region_42(it - 6), tid);
      /* (Synthesis1, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      /* (Synthesis1, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis1(buf_9_0__10_0 + region_10(it - 3), buf_10_0__11_0 + region_10(it - 3), tid);
      break; }
    case 4: {
      /* (Analysis2, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (Analysis2, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis2(buf_0_2__12_0 + region_12(it - 1), buf_12_0__13_0 + region_12(it - 1), tid);
      /* (split_bank, k=5) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (join_bank, k=2) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      /* (join_bank, k=1) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      break; }
    case 5: {
      /* (split_bank, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (Synthesis2, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (Synthesis2, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis2(buf_14_0__15_0 + region_15(it - 3), buf_15_0__16_0 + region_15(it - 3), tid);
      /* (join_bank, k=5) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      /* (join_bank, k=4) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      break; }
    case 6: {
      /* (Analysis3, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (Analysis3, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis3(buf_0_3__17_0 + region_17(it - 1), buf_17_0__18_0 + region_17(it - 1), tid);
      /* (split_bank, k=4) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (join_bank, k=7) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      /* (join_bank, k=6) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      break; }
    case 7: {
      /* (Down0, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down0(buf_2_0__3_0 + region_3(it - 2), buf_3_0__4_0 + region_3(it - 2), tid);
      /* (split_bank, k=7) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_bank, k=6) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_bank(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (Synthesis3, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Synthesis3, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis3(buf_19_0__20_0 + region_20(it - 3), buf_20_0__21_0 + region_20(it - 3), tid);
      /* (Gain0, k=5) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      /* (Gain0, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      /* (Gain0, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      /* (Up0, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up0(buf_3_0__4_0 + region_4(it - 2), buf_4_0__5_0 + region_4(it - 2), tid);
      break; }
    case 8: {
      /* (Analysis4, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Analysis4, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis4(buf_0_4__22_0 + region_22(it - 1), buf_22_0__23_0 + region_22(it - 1), tid);
      /* (Down3, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down3(buf_17_0__18_0 + region_18(it - 2), buf_18_0__19_0 + region_18(it - 2), tid);
      /* (Down2, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down2(buf_12_0__13_0 + region_13(it - 2), buf_13_0__14_0 + region_13(it - 2), tid);
      /* (Down1, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down1(buf_7_0__8_0 + region_8(it - 2), buf_8_0__9_0 + region_8(it - 2), tid);
      /* (Up3, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up3(buf_18_0__19_0 + region_19(it - 2), buf_19_0__20_0 + region_19(it - 2), tid);
      /* (Up2, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up2(buf_13_0__14_0 + region_14(it - 2), buf_14_0__15_0 + region_14(it - 2), tid);
      /* (Up1, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up1(buf_8_0__9_0 + region_9(it - 2), buf_9_0__10_0 + region_9(it - 2), tid);
      /* (Down4, k=0) o=16818 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Down4(buf_22_0__23_0 + region_23(it - 1), buf_23_0__24_0 + region_23(it - 1), tid);
      break; }
    case 9: {
      /* (Down7, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down7(buf_37_0__38_0 + region_38(it - 2), buf_38_0__39_0 + region_38(it - 2), tid);
      /* (Down6, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down6(buf_32_0__33_0 + region_33(it - 2), buf_33_0__34_0 + region_33(it - 2), tid);
      /* (Down5, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Down5(buf_27_0__28_0 + region_28(it - 2), buf_28_0__29_0 + region_28(it - 2), tid);
      /* (Up7, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up7(buf_38_0__39_0 + region_39(it - 2), buf_39_0__40_0 + region_39(it - 2), tid);
      /* (Up6, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up6(buf_33_0__34_0 + region_34(it - 2), buf_34_0__35_0 + region_34(it - 2), tid);
      /* (Up5, k=0) o=1048 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up5(buf_28_0__29_0 + region_29(it - 2), buf_29_0__30_0 + region_29(it - 2), tid);
      /* (Up4, k=0) o=16818 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Up4(buf_23_0__24_0 + region_24(it - 2), buf_24_0__25_0 + region_24(it - 2), tid);
      /* (Synthesis4, k=7) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=6) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=5) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=4) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=3) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=2) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=1) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      /* (Synthesis4, k=0) o=17866 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_Synthesis4(buf_24_0__25_0 + region_25(it - 2), buf_25_0__26_0 + region_25(it - 2), tid);
      break; }
    case 10: {
      /* (Analysis5, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Analysis5, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis5(buf_0_5__27_0 + region_27(it - 1), buf_27_0__28_0 + region_27(it - 1), tid);
      /* (Gain2, k=0) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain1, k=7) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=6) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=5) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=1) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain1, k=0) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain1(buf_10_0__11_0 + region_11(it - 4), buf_11_0__1_1 + region_11(it - 4), tid);
      /* (Gain0, k=7) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      /* (Gain0, k=6) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain0(buf_5_0__6_0 + region_6(it - 4), buf_6_0__1_0 + region_6(it - 4), tid);
      break; }
    case 11: {
      /* (Synthesis5, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Synthesis5, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis5(buf_29_0__30_0 + region_30(it - 3), buf_30_0__31_0 + region_30(it - 3), tid);
      /* (Gain3, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain3, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain3, k=1) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain3, k=0) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain2, k=7) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain2, k=6) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain2, k=5) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain2, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain2, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain2, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      /* (Gain2, k=1) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain2(buf_15_0__16_0 + region_16(it - 4), buf_16_0__1_2 + region_16(it - 4), tid);
      break; }
    case 12: {
      /* (Analysis6, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Analysis6, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis6(buf_0_6__32_0 + region_32(it - 1), buf_32_0__33_0 + region_32(it - 1), tid);
      /* (Gain3, k=7) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain3, k=6) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain3, k=5) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain3, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain3(buf_20_0__21_0 + region_21(it - 4), buf_21_0__1_3 + region_21(it - 4), tid);
      /* (Gain4, k=6) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      /* (Gain4, k=5) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      /* (Gain4, k=4) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      /* (Gain4, k=3) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      /* (Gain4, k=2) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      /* (Gain4, k=1) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      /* (Gain4, k=0) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      break; }
    case 13: {
      /* (Synthesis6, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Synthesis6, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis6(buf_34_0__35_0 + region_35(it - 3), buf_35_0__36_0 + region_35(it - 3), tid);
      /* (Gain5, k=7) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=6) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=5) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=1) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain5, k=0) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain5(buf_30_0__31_0 + region_31(it - 4), buf_31_0__1_5 + region_31(it - 4), tid);
      /* (Gain6, k=1) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 3), buf_36_0__1_6 + region_36(it - 3), tid);
      /* (Gain6, k=0) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 3), buf_36_0__1_6 + region_36(it - 3), tid);
      /* (Gain4, k=7) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain4(buf_25_0__26_0 + region_26(it - 3), buf_26_0__1_4 + region_26(it - 3), tid);
      break; }
    case 14: {
      /* (Analysis7, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Analysis7, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_Analysis7(buf_0_7__37_0 + region_37(it - 1), buf_37_0__38_0 + region_37(it - 1), tid);
      /* (Gain7, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 4), buf_41_0__1_7 + region_41(it - 4), tid);
      /* (Gain7, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 4), buf_41_0__1_7 + region_41(it - 4), tid);
      /* (Gain7, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 4), buf_41_0__1_7 + region_41(it - 4), tid);
      /* (Gain7, k=1) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 4), buf_41_0__1_7 + region_41(it - 4), tid);
      /* (Gain7, k=0) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 4), buf_41_0__1_7 + region_41(it - 4), tid);
      /* (Gain6, k=7) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 4), buf_36_0__1_6 + region_36(it - 4), tid);
      /* (Gain6, k=6) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 4), buf_36_0__1_6 + region_36(it - 4), tid);
      /* (Gain6, k=5) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 4), buf_36_0__1_6 + region_36(it - 4), tid);
      /* (Gain6, k=4) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 4), buf_36_0__1_6 + region_36(it - 4), tid);
      /* (Gain6, k=3) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 4), buf_36_0__1_6 + region_36(it - 4), tid);
      /* (Gain6, k=2) o=1048 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Gain6(buf_35_0__36_0 + region_36(it - 4), buf_36_0__1_6 + region_36(it - 4), tid);
      break; }
    case 15: {
      /* (Synthesis7, k=7) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=6) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=5) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=4) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=3) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=2) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=1) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (Synthesis7, k=0) o=1048 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Synthesis7(buf_39_0__40_0 + region_40(it - 3), buf_40_0__41_0 + region_40(it - 3), tid);
      /* (join_bank, k=3) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      /* (join_bank, k=0) o=1048 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_bank(buf_6_0__1_0 + region_1(it - 5), buf_1_0__42_0 + region_1(it - 5), tid);
      /* (Gain7, k=7) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 3), buf_41_0__1_7 + region_41(it - 3), tid);
      /* (Gain7, k=6) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 3), buf_41_0__1_7 + region_41(it - 3), tid);
      /* (Gain7, k=5) o=17866 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_Gain7(buf_40_0__41_0 + region_41(it - 3), buf_41_0__1_7 + region_41(it - 3), tid);
      break; }
    }
    /* II boundary */
  }
}

/* host launch (OpenCL):
 *   clEnqueueNDRangeKernel: global = 16 x 512, local = 512
 *   clCreateBuffer buf_2_0__3_0: 131072 bytes
 *   clCreateBuffer buf_3_0__4_0: 16384 bytes
 *   clCreateBuffer buf_4_0__5_0: 131180 bytes
 *   clCreateBuffer buf_5_0__6_0: 131072 bytes
 *   clCreateBuffer buf_0_0__2_0: 131180 bytes
 *   clCreateBuffer buf_6_0__1_0: 131072 bytes
 *   clCreateBuffer buf_7_0__8_0: 131072 bytes
 *   clCreateBuffer buf_8_0__9_0: 16384 bytes
 *   clCreateBuffer buf_9_0__10_0: 131180 bytes
 *   clCreateBuffer buf_10_0__11_0: 131072 bytes
 *   clCreateBuffer buf_0_1__7_0: 131180 bytes
 *   clCreateBuffer buf_11_0__1_1: 131072 bytes
 *   clCreateBuffer buf_12_0__13_0: 131072 bytes
 *   clCreateBuffer buf_13_0__14_0: 16384 bytes
 *   clCreateBuffer buf_14_0__15_0: 131180 bytes
 *   clCreateBuffer buf_15_0__16_0: 131072 bytes
 *   clCreateBuffer buf_0_2__12_0: 131180 bytes
 *   clCreateBuffer buf_16_0__1_2: 131072 bytes
 *   clCreateBuffer buf_17_0__18_0: 131072 bytes
 *   clCreateBuffer buf_18_0__19_0: 16384 bytes
 *   clCreateBuffer buf_19_0__20_0: 131180 bytes
 *   clCreateBuffer buf_20_0__21_0: 131072 bytes
 *   clCreateBuffer buf_0_3__17_0: 131180 bytes
 *   clCreateBuffer buf_21_0__1_3: 131072 bytes
 *   clCreateBuffer buf_22_0__23_0: 131072 bytes
 *   clCreateBuffer buf_23_0__24_0: 16384 bytes
 *   clCreateBuffer buf_24_0__25_0: 131180 bytes
 *   clCreateBuffer buf_25_0__26_0: 131072 bytes
 *   clCreateBuffer buf_0_4__22_0: 131180 bytes
 *   clCreateBuffer buf_26_0__1_4: 131072 bytes
 *   clCreateBuffer buf_27_0__28_0: 131072 bytes
 *   clCreateBuffer buf_28_0__29_0: 16384 bytes
 *   clCreateBuffer buf_29_0__30_0: 131180 bytes
 *   clCreateBuffer buf_30_0__31_0: 131072 bytes
 *   clCreateBuffer buf_0_5__27_0: 131180 bytes
 *   clCreateBuffer buf_31_0__1_5: 131072 bytes
 *   clCreateBuffer buf_32_0__33_0: 131072 bytes
 *   clCreateBuffer buf_33_0__34_0: 16384 bytes
 *   clCreateBuffer buf_34_0__35_0: 131180 bytes
 *   clCreateBuffer buf_35_0__36_0: 131072 bytes
 *   clCreateBuffer buf_0_6__32_0: 131180 bytes
 *   clCreateBuffer buf_36_0__1_6: 131072 bytes
 *   clCreateBuffer buf_37_0__38_0: 131072 bytes
 *   clCreateBuffer buf_38_0__39_0: 16384 bytes
 *   clCreateBuffer buf_39_0__40_0: 131180 bytes
 *   clCreateBuffer buf_40_0__41_0: 131072 bytes
 *   clCreateBuffer buf_0_7__37_0: 131180 bytes
 *   clCreateBuffer buf_41_0__1_7: 131072 bytes
 *   clCreateBuffer buf_1_0__42_0: 1048576 bytes
 *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. (9); iterations = 1024
 */
