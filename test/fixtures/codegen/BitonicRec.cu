/* streamit_gpu artifact
 * quality: refined (completed)
 * II: 4808 (lower bound 4540, binding res_mii)
 * schedule signature: 8220e77e56b463c617fdadf4944595e7
 */
#include <cuda_runtime.h>
#include <cstdio>

static __device__ inline int region_0(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_1(int it) { return ((it % 23) + 23) % 23 * 4096; }
static __device__ inline int region_2(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_3(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_4(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_5(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_6(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_7(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_8(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_9(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_10(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_11(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_12(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_13(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_14(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_15(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_16(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_17(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_18(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_19(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_20(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_21(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_22(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_23(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_24(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_25(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_26(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_27(int it) { return ((it % 23) + 23) % 23 * 4096; }
static __device__ inline int region_28(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_29(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_30(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_31(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_32(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_33(int it) { return ((it % 23) + 23) % 23 * 0; }
static __device__ inline int region_34(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_35(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_36(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_37(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_38(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_39(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_40(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_41(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_42(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_43(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_44(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_45(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_46(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_47(int it) { return ((it % 23) + 23) % 23 * 2048; }
static __device__ inline int region_48(int it) { return ((it % 23) + 23) % 23 * 1024; }
static __device__ inline int region_49(int it) { return ((it % 23) + 23) % 23 * 1024; }

static __device__ void work_split_sorthalves_23(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_sorthalves_23(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_sorthalves_14(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_sorthalves_14(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_13(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEdesc_12(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergecmp_17(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergecmp_17(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_15(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_16(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergerec_20(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergerec_20(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_19(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_18(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_sorthalves_3(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_sorthalves_3(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_2(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEdesc_1(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergecmp_6(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergecmp_6(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEdesc_4(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEdesc_5(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergerec_9(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergerec_9(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEdesc_8(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEdesc_7(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergecmp_28(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergecmp_28(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_24(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_25(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_26(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_27(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergerec_43(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergerec_43(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergecmp_38(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergecmp_38(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_36(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_37(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergerec_41(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergerec_41(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_40(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_39(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergecmp_31(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergecmp_31(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_29(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_30(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_split_mergerec_34(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_mergerec_34(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = _t4; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_33(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_CEasc_32(const int* in, int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int a = _t1;
  int _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  int b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = min(a, b); _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = max(a, b); _push++;
  (void)_pop; (void)_push;
}

__global__ void swp_kernel(float* buf_2_0__4_0, float* buf_4_0__3_0, float* buf_2_1__5_0, float* buf_5_0__3_1, float* buf_6_0__8_0, float* buf_8_0__7_0, float* buf_6_1__9_0, float* buf_9_0__7_1, float* buf_10_0__12_0, float* buf_12_0__11_0, float* buf_10_1__13_0, float* buf_13_0__11_1, float* buf_7_0__10_0, float* buf_3_0__6_0, float* buf_0_0__2_0, float* buf_11_0__1_0, float* buf_14_0__16_0, float* buf_16_0__15_0, float* buf_14_1__17_0, float* buf_17_0__15_1, float* buf_18_0__20_0, float* buf_20_0__19_0, float* buf_18_1__21_0, float* buf_21_0__19_1, float* buf_22_0__24_0, float* buf_24_0__23_0, float* buf_22_1__25_0, float* buf_25_0__23_1, float* buf_19_0__22_0, float* buf_15_0__18_0, float* buf_0_1__14_0, float* buf_23_0__1_1, float* buf_26_0__28_0, float* buf_28_0__27_0, float* buf_26_1__29_0, float* buf_29_0__27_1, float* buf_26_2__30_0, float* buf_30_0__27_2, float* buf_26_3__31_0, float* buf_31_0__27_3, float* buf_34_0__36_0, float* buf_36_0__35_0, float* buf_34_1__37_0, float* buf_37_0__35_1, float* buf_38_0__40_0, float* buf_40_0__39_0, float* buf_38_1__41_0, float* buf_41_0__39_1, float* buf_35_0__38_0, float* buf_32_0__34_0, float* buf_39_0__33_0, float* buf_42_0__44_0, float* buf_44_0__43_0, float* buf_42_1__45_0, float* buf_45_0__43_1, float* buf_46_0__48_0, float* buf_48_0__47_0, float* buf_46_1__49_0, float* buf_49_0__47_1, float* buf_43_0__46_0, float* buf_32_1__42_0, float* buf_47_0__33_1, float* buf_27_0__32_0, float* buf_1_0__26_0, const float* stream_in, float* stream_out, int iterations)
{
  int tid = threadIdx.x;
  int sm = blockIdx.x;
  /* staging predicates, one per pipeline stage (depth 22) */
  __shared__ int stage_on[22];
  if (tid == 0) for (int s = 0; s < 22; s++) stage_on[s] = 0;
  __syncthreads();
  for (int it = 0; it < iterations + 22; it++) {
    if (tid == 0) { for (int s = 21; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    __syncthreads();
    switch (sm) {
    case 0: {
      /* (split_mergecmp_38, k=0) o=0 f=15 threads=512 */
      if (stage_on[15] && tid < 512)
        work_split_mergecmp_38(buf_32_0__34_0 + region_34(it - 15), buf_34_0__36_0 + region_34(it - 15), tid);
      /* (CEasc_24, k=0) o=0 f=12 threads=512 */
      if (stage_on[12] && tid < 512)
        work_CEasc_24(buf_26_0__28_0 + region_28(it - 12), buf_28_0__27_0 + region_28(it - 12), tid);
      /* (split_sorthalves_23, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_sorthalves_23(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      break; }
    case 1: {
      /* (split_mergecmp_38, k=1) o=0 f=15 threads=512 */
      if (stage_on[15] && tid < 512)
        work_split_mergecmp_38(buf_32_0__34_0 + region_34(it - 15), buf_34_0__36_0 + region_34(it - 15), tid);
      /* (CEasc_25, k=0) o=0 f=12 threads=512 */
      if (stage_on[12] && tid < 512)
        work_CEasc_25(buf_26_1__29_0 + region_29(it - 12), buf_29_0__27_1 + region_29(it - 12), tid);
      /* (join_sorthalves_23, k=0) o=0 f=10 threads=512 */
      if (stage_on[10] && tid < 512)
        work_join_sorthalves_23(buf_11_0__1_0 + region_1(it - 10), buf_1_0__26_0 + region_1(it - 10), tid);
      break; }
    case 2: {
      /* (join_mergecmp_38, k=0) o=0 f=17 threads=512 */
      if (stage_on[17] && tid < 512)
        work_join_mergecmp_38(buf_36_0__35_0 + region_35(it - 17), buf_35_0__38_0 + region_35(it - 17), tid);
      /* (split_mergerec_43, k=0) o=0 f=14 threads=512 */
      if (stage_on[14] && tid < 512)
        work_split_mergerec_43(buf_27_0__32_0 + region_32(it - 14), buf_32_0__34_0 + region_32(it - 14), tid);
      /* (CEasc_26, k=0) o=0 f=12 threads=512 */
      if (stage_on[12] && tid < 512)
        work_CEasc_26(buf_26_2__30_0 + region_30(it - 12), buf_30_0__27_2 + region_30(it - 12), tid);
      break; }
    case 3: {
      /* (join_mergecmp_38, k=1) o=0 f=17 threads=512 */
      if (stage_on[17] && tid < 512)
        work_join_mergecmp_38(buf_36_0__35_0 + region_35(it - 17), buf_35_0__38_0 + region_35(it - 17), tid);
      /* (join_mergerec_43, k=0) o=0 f=21 threads=512 */
      if (stage_on[21] && tid < 512)
        work_join_mergerec_43(buf_39_0__33_0 + region_33(it - 21), stream_out + region_33(it - 21), tid);
      /* (CEasc_27, k=0) o=0 f=12 threads=512 */
      if (stage_on[12] && tid < 512)
        work_CEasc_27(buf_26_3__31_0 + region_31(it - 12), buf_31_0__27_3 + region_31(it - 12), tid);
      break; }
    case 4: {
      /* (CEasc_29, k=0) o=0 f=16 threads=512 */
      if (stage_on[16] && tid < 512)
        work_CEasc_29(buf_42_0__44_0 + region_44(it - 16), buf_44_0__43_0 + region_44(it - 16), tid);
      /* (split_mergerec_41, k=0) o=0 f=18 threads=512 */
      if (stage_on[18] && tid < 512)
        work_split_mergerec_41(buf_35_0__38_0 + region_38(it - 18), buf_38_0__40_0 + region_38(it - 18), tid);
      /* (CEasc_19, k=0) o=0 f=8 threads=512 */
      if (stage_on[8] && tid < 512)
        work_CEasc_19(buf_10_0__12_0 + region_12(it - 8), buf_12_0__11_0 + region_12(it - 8), tid);
      /* (split_sorthalves_14, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_sorthalves_14(buf_0_0__2_0 + region_2(it - 1), buf_2_0__4_0 + region_2(it - 1), tid);
      break; }
    case 5: {
      /* (CEasc_30, k=0) o=0 f=16 threads=512 */
      if (stage_on[16] && tid < 512)
        work_CEasc_30(buf_42_1__45_0 + region_45(it - 16), buf_45_0__43_1 + region_45(it - 16), tid);
      /* (join_mergerec_41, k=0) o=0 f=20 threads=512 */
      if (stage_on[20] && tid < 512)
        work_join_mergerec_41(buf_40_0__39_0 + region_39(it - 20), buf_39_0__33_0 + region_39(it - 20), tid);
      /* (CEasc_18, k=0) o=0 f=8 threads=512 */
      if (stage_on[8] && tid < 512)
        work_CEasc_18(buf_10_1__13_0 + region_13(it - 8), buf_13_0__11_1 + region_13(it - 8), tid);
      /* (join_sorthalves_14, k=0) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_join_sorthalves_14(buf_4_0__3_0 + region_3(it - 3), buf_3_0__6_0 + region_3(it - 3), tid);
      break; }
    case 6: {
      /* (split_mergerec_34, k=0) o=0 f=18 threads=512 */
      if (stage_on[18] && tid < 512)
        work_split_mergerec_34(buf_43_0__46_0 + region_46(it - 18), buf_46_0__48_0 + region_46(it - 18), tid);
      /* (CEasc_2, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_CEasc_2(buf_14_0__16_0 + region_16(it - 2), buf_16_0__15_0 + region_16(it - 2), tid);
      /* (split_mergerec_20, k=0) o=0 f=7 threads=512 */
      if (stage_on[7] && tid < 512)
        work_split_mergerec_20(buf_7_0__10_0 + region_10(it - 7), buf_10_0__12_0 + region_10(it - 7), tid);
      /* (CEasc_33, k=0) o=1586 f=18 threads=512 */
      if (stage_on[18] && tid < 512)
        work_CEasc_33(buf_46_0__48_0 + region_48(it - 18), buf_48_0__47_0 + region_48(it - 18), tid);
      break; }
    case 7: {
      /* (CEasc_32, k=0) o=0 f=19 threads=512 */
      if (stage_on[19] && tid < 512)
        work_CEasc_32(buf_46_1__49_0 + region_49(it - 19), buf_49_0__47_1 + region_49(it - 19), tid);
      /* (CEdesc_1, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_CEdesc_1(buf_14_1__17_0 + region_17(it - 2), buf_17_0__15_1 + region_17(it - 2), tid);
      /* (join_mergerec_20, k=0) o=0 f=9 threads=512 */
      if (stage_on[9] && tid < 512)
        work_join_mergerec_20(buf_12_0__11_0 + region_11(it - 9), buf_11_0__1_0 + region_11(it - 9), tid);
      /* (join_mergerec_34, k=0) o=1586 f=19 threads=512 */
      if (stage_on[19] && tid < 512)
        work_join_mergerec_34(buf_48_0__47_0 + region_47(it - 19), buf_47_0__33_1 + region_47(it - 19), tid);
      break; }
    case 8: {
      /* (split_mergecmp_31, k=0) o=0 f=15 threads=512 */
      if (stage_on[15] && tid < 512)
        work_split_mergecmp_31(buf_32_1__42_0 + region_42(it - 15), buf_42_0__44_0 + region_42(it - 15), tid);
      /* (CEasc_36, k=0) o=0 f=16 threads=512 */
      if (stage_on[16] && tid < 512)
        work_CEasc_36(buf_34_0__36_0 + region_36(it - 16), buf_36_0__35_0 + region_36(it - 16), tid);
      /* (split_sorthalves_3, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_sorthalves_3(buf_0_1__14_0 + region_14(it - 1), buf_14_0__16_0 + region_14(it - 1), tid);
      /* (split_mergecmp_17, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_split_mergecmp_17(buf_3_0__6_0 + region_6(it - 4), buf_6_0__8_0 + region_6(it - 4), tid);
      break; }
    case 9: {
      /* (split_mergecmp_31, k=1) o=0 f=15 threads=512 */
      if (stage_on[15] && tid < 512)
        work_split_mergecmp_31(buf_32_1__42_0 + region_42(it - 15), buf_42_0__44_0 + region_42(it - 15), tid);
      /* (CEasc_37, k=0) o=0 f=16 threads=512 */
      if (stage_on[16] && tid < 512)
        work_CEasc_37(buf_34_1__37_0 + region_37(it - 16), buf_37_0__35_1 + region_37(it - 16), tid);
      /* (join_sorthalves_3, k=0) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_join_sorthalves_3(buf_16_0__15_0 + region_15(it - 3), buf_15_0__18_0 + region_15(it - 3), tid);
      /* (split_mergecmp_17, k=1) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_split_mergecmp_17(buf_3_0__6_0 + region_6(it - 4), buf_6_0__8_0 + region_6(it - 4), tid);
      break; }
    case 10: {
      /* (join_mergecmp_31, k=0) o=0 f=17 threads=512 */
      if (stage_on[17] && tid < 512)
        work_join_mergecmp_31(buf_44_0__43_0 + region_43(it - 17), buf_43_0__46_0 + region_43(it - 17), tid);
      /* (CEasc_40, k=0) o=0 f=19 threads=512 */
      if (stage_on[19] && tid < 512)
        work_CEasc_40(buf_38_0__40_0 + region_40(it - 19), buf_40_0__39_0 + region_40(it - 19), tid);
      /* (split_mergerec_9, k=0) o=0 f=7 threads=512 */
      if (stage_on[7] && tid < 512)
        work_split_mergerec_9(buf_19_0__22_0 + region_22(it - 7), buf_22_0__24_0 + region_22(it - 7), tid);
      /* (join_mergecmp_17, k=0) o=0 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_join_mergecmp_17(buf_8_0__7_0 + region_7(it - 6), buf_7_0__10_0 + region_7(it - 6), tid);
      break; }
    case 11: {
      /* (join_mergecmp_31, k=1) o=0 f=17 threads=512 */
      if (stage_on[17] && tid < 512)
        work_join_mergecmp_31(buf_44_0__43_0 + region_43(it - 17), buf_43_0__46_0 + region_43(it - 17), tid);
      /* (CEasc_39, k=0) o=0 f=19 threads=512 */
      if (stage_on[19] && tid < 512)
        work_CEasc_39(buf_38_1__41_0 + region_41(it - 19), buf_41_0__39_1 + region_41(it - 19), tid);
      /* (join_mergerec_9, k=0) o=0 f=9 threads=512 */
      if (stage_on[9] && tid < 512)
        work_join_mergerec_9(buf_24_0__23_0 + region_23(it - 9), buf_23_0__1_1 + region_23(it - 9), tid);
      /* (join_mergecmp_17, k=1) o=0 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_join_mergecmp_17(buf_8_0__7_0 + region_7(it - 6), buf_7_0__10_0 + region_7(it - 6), tid);
      break; }
    case 12: {
      /* (split_mergecmp_28, k=0) o=0 f=11 threads=512 */
      if (stage_on[11] && tid < 512)
        work_split_mergecmp_28(buf_1_0__26_0 + region_26(it - 11), buf_26_0__28_0 + region_26(it - 11), tid);
      /* (CEdesc_4, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_CEdesc_4(buf_18_0__20_0 + region_20(it - 5), buf_20_0__19_0 + region_20(it - 5), tid);
      /* (split_mergecmp_6, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_split_mergecmp_6(buf_15_0__18_0 + region_18(it - 4), buf_18_0__20_0 + region_18(it - 4), tid);
      /* (CEasc_13, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_CEasc_13(buf_2_0__4_0 + region_4(it - 2), buf_4_0__3_0 + region_4(it - 2), tid);
      break; }
    case 13: {
      /* (split_mergecmp_28, k=1) o=0 f=11 threads=512 */
      if (stage_on[11] && tid < 512)
        work_split_mergecmp_28(buf_1_0__26_0 + region_26(it - 11), buf_26_0__28_0 + region_26(it - 11), tid);
      /* (CEdesc_5, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_CEdesc_5(buf_18_1__21_0 + region_21(it - 5), buf_21_0__19_1 + region_21(it - 5), tid);
      /* (split_mergecmp_6, k=1) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_split_mergecmp_6(buf_15_0__18_0 + region_18(it - 4), buf_18_0__20_0 + region_18(it - 4), tid);
      /* (CEdesc_12, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_CEdesc_12(buf_2_1__5_0 + region_5(it - 2), buf_5_0__3_1 + region_5(it - 2), tid);
      break; }
    case 14: {
      /* (join_mergecmp_28, k=0) o=0 f=13 threads=512 */
      if (stage_on[13] && tid < 512)
        work_join_mergecmp_28(buf_28_0__27_0 + region_27(it - 13), buf_27_0__32_0 + region_27(it - 13), tid);
      /* (CEdesc_8, k=0) o=0 f=8 threads=512 */
      if (stage_on[8] && tid < 512)
        work_CEdesc_8(buf_22_0__24_0 + region_24(it - 8), buf_24_0__23_0 + region_24(it - 8), tid);
      /* (join_mergecmp_6, k=0) o=0 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_join_mergecmp_6(buf_20_0__19_0 + region_19(it - 6), buf_19_0__22_0 + region_19(it - 6), tid);
      /* (CEasc_15, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_CEasc_15(buf_6_0__8_0 + region_8(it - 5), buf_8_0__7_0 + region_8(it - 5), tid);
      break; }
    case 15: {
      /* (join_mergecmp_28, k=1) o=0 f=13 threads=512 */
      if (stage_on[13] && tid < 512)
        work_join_mergecmp_28(buf_28_0__27_0 + region_27(it - 13), buf_27_0__32_0 + region_27(it - 13), tid);
      /* (CEdesc_7, k=0) o=0 f=8 threads=512 */
      if (stage_on[8] && tid < 512)
        work_CEdesc_7(buf_22_1__25_0 + region_25(it - 8), buf_25_0__23_1 + region_25(it - 8), tid);
      /* (join_mergecmp_6, k=1) o=0 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_join_mergecmp_6(buf_20_0__19_0 + region_19(it - 6), buf_19_0__22_0 + region_19(it - 6), tid);
      /* (CEasc_16, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_CEasc_16(buf_6_1__9_0 + region_9(it - 5), buf_9_0__7_1 + region_9(it - 5), tid);
      break; }
    }
    /* II boundary */
  }
}

int main()
{
  float* buf_2_0__4_0; cudaMalloc(&buf_2_0__4_0, 94208);
  float* buf_4_0__3_0; cudaMalloc(&buf_4_0__3_0, 94208);
  float* buf_2_1__5_0; cudaMalloc(&buf_2_1__5_0, 94208);
  float* buf_5_0__3_1; cudaMalloc(&buf_5_0__3_1, 94208);
  float* buf_6_0__8_0; cudaMalloc(&buf_6_0__8_0, 94208);
  float* buf_8_0__7_0; cudaMalloc(&buf_8_0__7_0, 94208);
  float* buf_6_1__9_0; cudaMalloc(&buf_6_1__9_0, 94208);
  float* buf_9_0__7_1; cudaMalloc(&buf_9_0__7_1, 94208);
  float* buf_10_0__12_0; cudaMalloc(&buf_10_0__12_0, 94208);
  float* buf_12_0__11_0; cudaMalloc(&buf_12_0__11_0, 94208);
  float* buf_10_1__13_0; cudaMalloc(&buf_10_1__13_0, 94208);
  float* buf_13_0__11_1; cudaMalloc(&buf_13_0__11_1, 94208);
  float* buf_7_0__10_0; cudaMalloc(&buf_7_0__10_0, 188416);
  float* buf_3_0__6_0; cudaMalloc(&buf_3_0__6_0, 188416);
  float* buf_0_0__2_0; cudaMalloc(&buf_0_0__2_0, 188416);
  float* buf_11_0__1_0; cudaMalloc(&buf_11_0__1_0, 188416);
  float* buf_14_0__16_0; cudaMalloc(&buf_14_0__16_0, 94208);
  float* buf_16_0__15_0; cudaMalloc(&buf_16_0__15_0, 94208);
  float* buf_14_1__17_0; cudaMalloc(&buf_14_1__17_0, 94208);
  float* buf_17_0__15_1; cudaMalloc(&buf_17_0__15_1, 94208);
  float* buf_18_0__20_0; cudaMalloc(&buf_18_0__20_0, 94208);
  float* buf_20_0__19_0; cudaMalloc(&buf_20_0__19_0, 94208);
  float* buf_18_1__21_0; cudaMalloc(&buf_18_1__21_0, 94208);
  float* buf_21_0__19_1; cudaMalloc(&buf_21_0__19_1, 94208);
  float* buf_22_0__24_0; cudaMalloc(&buf_22_0__24_0, 94208);
  float* buf_24_0__23_0; cudaMalloc(&buf_24_0__23_0, 94208);
  float* buf_22_1__25_0; cudaMalloc(&buf_22_1__25_0, 94208);
  float* buf_25_0__23_1; cudaMalloc(&buf_25_0__23_1, 94208);
  float* buf_19_0__22_0; cudaMalloc(&buf_19_0__22_0, 188416);
  float* buf_15_0__18_0; cudaMalloc(&buf_15_0__18_0, 188416);
  float* buf_0_1__14_0; cudaMalloc(&buf_0_1__14_0, 188416);
  float* buf_23_0__1_1; cudaMalloc(&buf_23_0__1_1, 188416);
  float* buf_26_0__28_0; cudaMalloc(&buf_26_0__28_0, 94208);
  float* buf_28_0__27_0; cudaMalloc(&buf_28_0__27_0, 94208);
  float* buf_26_1__29_0; cudaMalloc(&buf_26_1__29_0, 94208);
  float* buf_29_0__27_1; cudaMalloc(&buf_29_0__27_1, 94208);
  float* buf_26_2__30_0; cudaMalloc(&buf_26_2__30_0, 94208);
  float* buf_30_0__27_2; cudaMalloc(&buf_30_0__27_2, 94208);
  float* buf_26_3__31_0; cudaMalloc(&buf_26_3__31_0, 94208);
  float* buf_31_0__27_3; cudaMalloc(&buf_31_0__27_3, 94208);
  float* buf_34_0__36_0; cudaMalloc(&buf_34_0__36_0, 94208);
  float* buf_36_0__35_0; cudaMalloc(&buf_36_0__35_0, 94208);
  float* buf_34_1__37_0; cudaMalloc(&buf_34_1__37_0, 94208);
  float* buf_37_0__35_1; cudaMalloc(&buf_37_0__35_1, 94208);
  float* buf_38_0__40_0; cudaMalloc(&buf_38_0__40_0, 94208);
  float* buf_40_0__39_0; cudaMalloc(&buf_40_0__39_0, 94208);
  float* buf_38_1__41_0; cudaMalloc(&buf_38_1__41_0, 94208);
  float* buf_41_0__39_1; cudaMalloc(&buf_41_0__39_1, 94208);
  float* buf_35_0__38_0; cudaMalloc(&buf_35_0__38_0, 188416);
  float* buf_32_0__34_0; cudaMalloc(&buf_32_0__34_0, 188416);
  float* buf_39_0__33_0; cudaMalloc(&buf_39_0__33_0, 188416);
  float* buf_42_0__44_0; cudaMalloc(&buf_42_0__44_0, 94208);
  float* buf_44_0__43_0; cudaMalloc(&buf_44_0__43_0, 94208);
  float* buf_42_1__45_0; cudaMalloc(&buf_42_1__45_0, 94208);
  float* buf_45_0__43_1; cudaMalloc(&buf_45_0__43_1, 94208);
  float* buf_46_0__48_0; cudaMalloc(&buf_46_0__48_0, 94208);
  float* buf_48_0__47_0; cudaMalloc(&buf_48_0__47_0, 94208);
  float* buf_46_1__49_0; cudaMalloc(&buf_46_1__49_0, 94208);
  float* buf_49_0__47_1; cudaMalloc(&buf_49_0__47_1, 94208);
  float* buf_43_0__46_0; cudaMalloc(&buf_43_0__46_0, 188416);
  float* buf_32_1__42_0; cudaMalloc(&buf_32_1__42_0, 188416);
  float* buf_47_0__33_1; cudaMalloc(&buf_47_0__33_1, 188416);
  float* buf_27_0__32_0; cudaMalloc(&buf_27_0__32_0, 376832);
  float* buf_1_0__26_0; cudaMalloc(&buf_1_0__26_0, 376832);
  float *stream_in, *stream_out;
  /* input shuffled on the host per eq. (9) before upload */
  cudaMalloc(&stream_in, 1 << 20);
  cudaMalloc(&stream_out, 1 << 20);
  swp_kernel<<<16, 512>>>(buf_2_0__4_0, buf_4_0__3_0, buf_2_1__5_0, buf_5_0__3_1, buf_6_0__8_0, buf_8_0__7_0, buf_6_1__9_0, buf_9_0__7_1, buf_10_0__12_0, buf_12_0__11_0, buf_10_1__13_0, buf_13_0__11_1, buf_7_0__10_0, buf_3_0__6_0, buf_0_0__2_0, buf_11_0__1_0, buf_14_0__16_0, buf_16_0__15_0, buf_14_1__17_0, buf_17_0__15_1, buf_18_0__20_0, buf_20_0__19_0, buf_18_1__21_0, buf_21_0__19_1, buf_22_0__24_0, buf_24_0__23_0, buf_22_1__25_0, buf_25_0__23_1, buf_19_0__22_0, buf_15_0__18_0, buf_0_1__14_0, buf_23_0__1_1, buf_26_0__28_0, buf_28_0__27_0, buf_26_1__29_0, buf_29_0__27_1, buf_26_2__30_0, buf_30_0__27_2, buf_26_3__31_0, buf_31_0__27_3, buf_34_0__36_0, buf_36_0__35_0, buf_34_1__37_0, buf_37_0__35_1, buf_38_0__40_0, buf_40_0__39_0, buf_38_1__41_0, buf_41_0__39_1, buf_35_0__38_0, buf_32_0__34_0, buf_39_0__33_0, buf_42_0__44_0, buf_44_0__43_0, buf_42_1__45_0, buf_45_0__43_1, buf_46_0__48_0, buf_48_0__47_0, buf_46_1__49_0, buf_49_0__47_1, buf_43_0__46_0, buf_32_1__42_0, buf_47_0__33_1, buf_27_0__32_0, buf_1_0__26_0, stream_in, stream_out, 1024);
  cudaDeviceSynchronize();
  return 0;
}
