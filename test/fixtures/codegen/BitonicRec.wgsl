// streamit_gpu artifact (wgsl)
// quality: refined (completed)
// II: 4808 (lower bound 4540, binding res_mii)
// schedule signature: 8220e77e56b463c617fdadf4944595e7
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_2_0__4_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_4_0__3_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_2_1__5_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_5_0__3_1: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_6_0__8_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_8_0__7_0: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_6_1__9_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_9_0__7_1: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_10_0__12_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_12_0__11_0: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_10_1__13_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_13_0__11_1: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_7_0__10_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_3_0__6_0: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_0_0__2_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_11_0__1_0: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_14_0__16_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_16_0__15_0: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_14_1__17_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_17_0__15_1: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_18_0__20_0: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_20_0__19_0: array<f32>;
@group(0) @binding(22) var<storage, read_write> buf_18_1__21_0: array<f32>;
@group(0) @binding(23) var<storage, read_write> buf_21_0__19_1: array<f32>;
@group(0) @binding(24) var<storage, read_write> buf_22_0__24_0: array<f32>;
@group(0) @binding(25) var<storage, read_write> buf_24_0__23_0: array<f32>;
@group(0) @binding(26) var<storage, read_write> buf_22_1__25_0: array<f32>;
@group(0) @binding(27) var<storage, read_write> buf_25_0__23_1: array<f32>;
@group(0) @binding(28) var<storage, read_write> buf_19_0__22_0: array<f32>;
@group(0) @binding(29) var<storage, read_write> buf_15_0__18_0: array<f32>;
@group(0) @binding(30) var<storage, read_write> buf_0_1__14_0: array<f32>;
@group(0) @binding(31) var<storage, read_write> buf_23_0__1_1: array<f32>;
@group(0) @binding(32) var<storage, read_write> buf_26_0__28_0: array<f32>;
@group(0) @binding(33) var<storage, read_write> buf_28_0__27_0: array<f32>;
@group(0) @binding(34) var<storage, read_write> buf_26_1__29_0: array<f32>;
@group(0) @binding(35) var<storage, read_write> buf_29_0__27_1: array<f32>;
@group(0) @binding(36) var<storage, read_write> buf_26_2__30_0: array<f32>;
@group(0) @binding(37) var<storage, read_write> buf_30_0__27_2: array<f32>;
@group(0) @binding(38) var<storage, read_write> buf_26_3__31_0: array<f32>;
@group(0) @binding(39) var<storage, read_write> buf_31_0__27_3: array<f32>;
@group(0) @binding(40) var<storage, read_write> buf_34_0__36_0: array<f32>;
@group(0) @binding(41) var<storage, read_write> buf_36_0__35_0: array<f32>;
@group(0) @binding(42) var<storage, read_write> buf_34_1__37_0: array<f32>;
@group(0) @binding(43) var<storage, read_write> buf_37_0__35_1: array<f32>;
@group(0) @binding(44) var<storage, read_write> buf_38_0__40_0: array<f32>;
@group(0) @binding(45) var<storage, read_write> buf_40_0__39_0: array<f32>;
@group(0) @binding(46) var<storage, read_write> buf_38_1__41_0: array<f32>;
@group(0) @binding(47) var<storage, read_write> buf_41_0__39_1: array<f32>;
@group(0) @binding(48) var<storage, read_write> buf_35_0__38_0: array<f32>;
@group(0) @binding(49) var<storage, read_write> buf_32_0__34_0: array<f32>;
@group(0) @binding(50) var<storage, read_write> buf_39_0__33_0: array<f32>;
@group(0) @binding(51) var<storage, read_write> buf_42_0__44_0: array<f32>;
@group(0) @binding(52) var<storage, read_write> buf_44_0__43_0: array<f32>;
@group(0) @binding(53) var<storage, read_write> buf_42_1__45_0: array<f32>;
@group(0) @binding(54) var<storage, read_write> buf_45_0__43_1: array<f32>;
@group(0) @binding(55) var<storage, read_write> buf_46_0__48_0: array<f32>;
@group(0) @binding(56) var<storage, read_write> buf_48_0__47_0: array<f32>;
@group(0) @binding(57) var<storage, read_write> buf_46_1__49_0: array<f32>;
@group(0) @binding(58) var<storage, read_write> buf_49_0__47_1: array<f32>;
@group(0) @binding(59) var<storage, read_write> buf_43_0__46_0: array<f32>;
@group(0) @binding(60) var<storage, read_write> buf_32_1__42_0: array<f32>;
@group(0) @binding(61) var<storage, read_write> buf_47_0__33_1: array<f32>;
@group(0) @binding(62) var<storage, read_write> buf_27_0__32_0: array<f32>;
@group(0) @binding(63) var<storage, read_write> buf_1_0__26_0: array<f32>;
@group(0) @binding(64) var<storage, read> stream_in: array<f32>;
@group(0) @binding(65) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(66) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 22>;

fn region_0(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_1(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 4096; }
fn region_2(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_3(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_4(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_5(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_6(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_7(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_8(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_9(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_10(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_11(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_12(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_13(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_14(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_15(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_16(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_17(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_18(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_19(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_20(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_21(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_22(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_23(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_24(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_25(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_26(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_27(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 4096; }
fn region_28(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_29(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_30(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_31(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_32(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_33(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 0; }
fn region_34(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_35(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_36(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_37(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_38(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_39(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_40(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_41(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_42(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_43(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_44(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_45(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_46(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_47(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 2048; }
fn region_48(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }
fn region_49(it: i32) -> i32 { return ((it % 23) + 23) % 23 * 1024; }

fn work_split_sorthalves_23(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_sorthalves_23(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_11_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_sorthalves_14(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_sorthalves_14(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_4_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_3_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_4_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_3_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_4_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_3_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_4_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_3_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_13(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_2_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_2_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_4_0__3_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_4_0__3_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEdesc_12(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_2_1__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_2_1__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_5_0__3_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  buf_5_0__3_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergecmp_17(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_3_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_6_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergecmp_17(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_8_0__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_7_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_15(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_6_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_6_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_8_0__7_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_8_0__7_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_16(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_6_1__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_6_1__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_9_0__7_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_9_0__7_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergerec_20(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_7_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergerec_20(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_11_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_11_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_11_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_11_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_19(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_18(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_sorthalves_3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_0_1__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_14_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_0_1__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_14_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_0_1__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_14_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_0_1__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_14_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_sorthalves_3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_16_0__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_15_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_16_0__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_15_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_16_0__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_15_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_16_0__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_15_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_14_0__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_14_0__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_16_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_16_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEdesc_1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_14_1__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_14_1__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_17_0__15_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  buf_17_0__15_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergecmp_6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_15_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_18_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_15_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_18_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergecmp_6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_20_0__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_19_0__22_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_20_0__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_19_0__22_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEdesc_4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_18_0__20_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_18_0__20_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_20_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  buf_20_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEdesc_5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_18_1__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_18_1__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_21_0__19_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  buf_21_0__19_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergerec_9(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_19_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_22_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_19_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_22_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_19_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_22_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_19_0__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_22_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergerec_9(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_24_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_23_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_24_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_23_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_24_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_23_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_24_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_23_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEdesc_8(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_22_0__24_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_22_0__24_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_24_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  buf_24_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEdesc_7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_22_1__25_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_22_1__25_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_25_0__23_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  buf_25_0__23_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergecmp_28(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_1_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_26_0__28_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_1_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_26_0__28_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_1_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_26_0__28_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_1_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_26_0__28_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergecmp_28(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_28_0__27_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_27_0__32_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_28_0__27_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_27_0__32_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_28_0__27_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_27_0__32_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_28_0__27_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_27_0__32_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_24(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_26_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_26_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_28_0__27_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_28_0__27_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_25(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_26_1__29_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_26_1__29_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_29_0__27_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_29_0__27_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_26(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_26_2__30_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_26_2__30_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_30_0__27_2[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_30_0__27_2[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_27(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_26_3__31_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_26_3__31_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_31_0__27_3[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_31_0__27_3[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergerec_43(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_27_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_32_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergerec_43(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_39_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergecmp_38(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_32_0__34_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_34_0__36_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_32_0__34_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_34_0__36_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergecmp_38(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_36_0__35_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_35_0__38_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_36_0__35_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_35_0__38_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_36(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_34_0__36_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_34_0__36_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_36_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_36_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_37(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_34_1__37_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_34_1__37_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_37_0__35_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_37_0__35_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergerec_41(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_35_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_38_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_35_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_38_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_35_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_38_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_35_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_38_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergerec_41(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_40_0__39_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_39_0__33_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_40_0__39_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_39_0__33_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_40_0__39_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_39_0__33_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_40_0__39_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_39_0__33_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_40(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_38_0__40_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_38_0__40_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_40_0__39_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_40_0__39_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_39(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_38_1__41_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_38_1__41_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_41_0__39_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_41_0__39_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergecmp_31(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_32_1__42_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_42_0__44_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_32_1__42_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_42_0__44_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergecmp_31(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_44_0__43_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_43_0__46_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_44_0__43_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_43_0__46_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_29(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_42_0__44_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_42_0__44_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_44_0__43_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_44_0__43_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_30(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_42_1__45_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_42_1__45_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_45_0__43_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_45_0__43_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_mergerec_34(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_43_0__46_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_46_0__48_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_43_0__46_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_46_0__48_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_43_0__46_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_46_0__48_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_43_0__46_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_46_0__48_0[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_mergerec_34(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_48_0__47_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_47_0__33_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_48_0__47_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_47_0__33_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_48_0__47_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_47_0__33_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_48_0__47_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
  buf_47_0__33_1[out_base + (128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = f32(_t4); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_33(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_46_0__48_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_46_0__48_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_48_0__47_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_48_0__47_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_CEasc_32(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: i32 = i32(buf_46_1__49_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var a: i32 = _t1;
  let _t2: i32 = i32(buf_46_1__49_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]); _pop++;
  var b: i32 = _t2;
  buf_49_0__47_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(min(a, b)); _push++;
  buf_49_0__47_1[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(max(a, b)); _push++;
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 22)
  if tid == 0 { for (var s: i32 = 0; s < 22; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 22; it++) {
    if tid == 0 {
      for (var s: i32 = 21; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (split_mergecmp_38, k=0) o=0 f=15 threads=512
        if stage_on[15] != 0 && tid < 512 {
          work_split_mergecmp_38(region_34(it - 15), region_34(it - 15), tid);
        }
        // (CEasc_24, k=0) o=0 f=12 threads=512
        if stage_on[12] != 0 && tid < 512 {
          work_CEasc_24(region_28(it - 12), region_28(it - 12), tid);
        }
        // (split_sorthalves_23, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_sorthalves_23(region_0(it - 0), region_0(it - 0), tid);
        }
      }
      case 1: {
        // (split_mergecmp_38, k=1) o=0 f=15 threads=512
        if stage_on[15] != 0 && tid < 512 {
          work_split_mergecmp_38(region_34(it - 15), region_34(it - 15), tid);
        }
        // (CEasc_25, k=0) o=0 f=12 threads=512
        if stage_on[12] != 0 && tid < 512 {
          work_CEasc_25(region_29(it - 12), region_29(it - 12), tid);
        }
        // (join_sorthalves_23, k=0) o=0 f=10 threads=512
        if stage_on[10] != 0 && tid < 512 {
          work_join_sorthalves_23(region_1(it - 10), region_1(it - 10), tid);
        }
      }
      case 2: {
        // (join_mergecmp_38, k=0) o=0 f=17 threads=512
        if stage_on[17] != 0 && tid < 512 {
          work_join_mergecmp_38(region_35(it - 17), region_35(it - 17), tid);
        }
        // (split_mergerec_43, k=0) o=0 f=14 threads=512
        if stage_on[14] != 0 && tid < 512 {
          work_split_mergerec_43(region_32(it - 14), region_32(it - 14), tid);
        }
        // (CEasc_26, k=0) o=0 f=12 threads=512
        if stage_on[12] != 0 && tid < 512 {
          work_CEasc_26(region_30(it - 12), region_30(it - 12), tid);
        }
      }
      case 3: {
        // (join_mergecmp_38, k=1) o=0 f=17 threads=512
        if stage_on[17] != 0 && tid < 512 {
          work_join_mergecmp_38(region_35(it - 17), region_35(it - 17), tid);
        }
        // (join_mergerec_43, k=0) o=0 f=21 threads=512
        if stage_on[21] != 0 && tid < 512 {
          work_join_mergerec_43(region_33(it - 21), region_33(it - 21), tid);
        }
        // (CEasc_27, k=0) o=0 f=12 threads=512
        if stage_on[12] != 0 && tid < 512 {
          work_CEasc_27(region_31(it - 12), region_31(it - 12), tid);
        }
      }
      case 4: {
        // (CEasc_29, k=0) o=0 f=16 threads=512
        if stage_on[16] != 0 && tid < 512 {
          work_CEasc_29(region_44(it - 16), region_44(it - 16), tid);
        }
        // (split_mergerec_41, k=0) o=0 f=18 threads=512
        if stage_on[18] != 0 && tid < 512 {
          work_split_mergerec_41(region_38(it - 18), region_38(it - 18), tid);
        }
        // (CEasc_19, k=0) o=0 f=8 threads=512
        if stage_on[8] != 0 && tid < 512 {
          work_CEasc_19(region_12(it - 8), region_12(it - 8), tid);
        }
        // (split_sorthalves_14, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_sorthalves_14(region_2(it - 1), region_2(it - 1), tid);
        }
      }
      case 5: {
        // (CEasc_30, k=0) o=0 f=16 threads=512
        if stage_on[16] != 0 && tid < 512 {
          work_CEasc_30(region_45(it - 16), region_45(it - 16), tid);
        }
        // (join_mergerec_41, k=0) o=0 f=20 threads=512
        if stage_on[20] != 0 && tid < 512 {
          work_join_mergerec_41(region_39(it - 20), region_39(it - 20), tid);
        }
        // (CEasc_18, k=0) o=0 f=8 threads=512
        if stage_on[8] != 0 && tid < 512 {
          work_CEasc_18(region_13(it - 8), region_13(it - 8), tid);
        }
        // (join_sorthalves_14, k=0) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_join_sorthalves_14(region_3(it - 3), region_3(it - 3), tid);
        }
      }
      case 6: {
        // (split_mergerec_34, k=0) o=0 f=18 threads=512
        if stage_on[18] != 0 && tid < 512 {
          work_split_mergerec_34(region_46(it - 18), region_46(it - 18), tid);
        }
        // (CEasc_2, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_CEasc_2(region_16(it - 2), region_16(it - 2), tid);
        }
        // (split_mergerec_20, k=0) o=0 f=7 threads=512
        if stage_on[7] != 0 && tid < 512 {
          work_split_mergerec_20(region_10(it - 7), region_10(it - 7), tid);
        }
        // (CEasc_33, k=0) o=1586 f=18 threads=512
        if stage_on[18] != 0 && tid < 512 {
          work_CEasc_33(region_48(it - 18), region_48(it - 18), tid);
        }
      }
      case 7: {
        // (CEasc_32, k=0) o=0 f=19 threads=512
        if stage_on[19] != 0 && tid < 512 {
          work_CEasc_32(region_49(it - 19), region_49(it - 19), tid);
        }
        // (CEdesc_1, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_CEdesc_1(region_17(it - 2), region_17(it - 2), tid);
        }
        // (join_mergerec_20, k=0) o=0 f=9 threads=512
        if stage_on[9] != 0 && tid < 512 {
          work_join_mergerec_20(region_11(it - 9), region_11(it - 9), tid);
        }
        // (join_mergerec_34, k=0) o=1586 f=19 threads=512
        if stage_on[19] != 0 && tid < 512 {
          work_join_mergerec_34(region_47(it - 19), region_47(it - 19), tid);
        }
      }
      case 8: {
        // (split_mergecmp_31, k=0) o=0 f=15 threads=512
        if stage_on[15] != 0 && tid < 512 {
          work_split_mergecmp_31(region_42(it - 15), region_42(it - 15), tid);
        }
        // (CEasc_36, k=0) o=0 f=16 threads=512
        if stage_on[16] != 0 && tid < 512 {
          work_CEasc_36(region_36(it - 16), region_36(it - 16), tid);
        }
        // (split_sorthalves_3, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_sorthalves_3(region_14(it - 1), region_14(it - 1), tid);
        }
        // (split_mergecmp_17, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_split_mergecmp_17(region_6(it - 4), region_6(it - 4), tid);
        }
      }
      case 9: {
        // (split_mergecmp_31, k=1) o=0 f=15 threads=512
        if stage_on[15] != 0 && tid < 512 {
          work_split_mergecmp_31(region_42(it - 15), region_42(it - 15), tid);
        }
        // (CEasc_37, k=0) o=0 f=16 threads=512
        if stage_on[16] != 0 && tid < 512 {
          work_CEasc_37(region_37(it - 16), region_37(it - 16), tid);
        }
        // (join_sorthalves_3, k=0) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_join_sorthalves_3(region_15(it - 3), region_15(it - 3), tid);
        }
        // (split_mergecmp_17, k=1) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_split_mergecmp_17(region_6(it - 4), region_6(it - 4), tid);
        }
      }
      case 10: {
        // (join_mergecmp_31, k=0) o=0 f=17 threads=512
        if stage_on[17] != 0 && tid < 512 {
          work_join_mergecmp_31(region_43(it - 17), region_43(it - 17), tid);
        }
        // (CEasc_40, k=0) o=0 f=19 threads=512
        if stage_on[19] != 0 && tid < 512 {
          work_CEasc_40(region_40(it - 19), region_40(it - 19), tid);
        }
        // (split_mergerec_9, k=0) o=0 f=7 threads=512
        if stage_on[7] != 0 && tid < 512 {
          work_split_mergerec_9(region_22(it - 7), region_22(it - 7), tid);
        }
        // (join_mergecmp_17, k=0) o=0 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_join_mergecmp_17(region_7(it - 6), region_7(it - 6), tid);
        }
      }
      case 11: {
        // (join_mergecmp_31, k=1) o=0 f=17 threads=512
        if stage_on[17] != 0 && tid < 512 {
          work_join_mergecmp_31(region_43(it - 17), region_43(it - 17), tid);
        }
        // (CEasc_39, k=0) o=0 f=19 threads=512
        if stage_on[19] != 0 && tid < 512 {
          work_CEasc_39(region_41(it - 19), region_41(it - 19), tid);
        }
        // (join_mergerec_9, k=0) o=0 f=9 threads=512
        if stage_on[9] != 0 && tid < 512 {
          work_join_mergerec_9(region_23(it - 9), region_23(it - 9), tid);
        }
        // (join_mergecmp_17, k=1) o=0 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_join_mergecmp_17(region_7(it - 6), region_7(it - 6), tid);
        }
      }
      case 12: {
        // (split_mergecmp_28, k=0) o=0 f=11 threads=512
        if stage_on[11] != 0 && tid < 512 {
          work_split_mergecmp_28(region_26(it - 11), region_26(it - 11), tid);
        }
        // (CEdesc_4, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_CEdesc_4(region_20(it - 5), region_20(it - 5), tid);
        }
        // (split_mergecmp_6, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_split_mergecmp_6(region_18(it - 4), region_18(it - 4), tid);
        }
        // (CEasc_13, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_CEasc_13(region_4(it - 2), region_4(it - 2), tid);
        }
      }
      case 13: {
        // (split_mergecmp_28, k=1) o=0 f=11 threads=512
        if stage_on[11] != 0 && tid < 512 {
          work_split_mergecmp_28(region_26(it - 11), region_26(it - 11), tid);
        }
        // (CEdesc_5, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_CEdesc_5(region_21(it - 5), region_21(it - 5), tid);
        }
        // (split_mergecmp_6, k=1) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_split_mergecmp_6(region_18(it - 4), region_18(it - 4), tid);
        }
        // (CEdesc_12, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_CEdesc_12(region_5(it - 2), region_5(it - 2), tid);
        }
      }
      case 14: {
        // (join_mergecmp_28, k=0) o=0 f=13 threads=512
        if stage_on[13] != 0 && tid < 512 {
          work_join_mergecmp_28(region_27(it - 13), region_27(it - 13), tid);
        }
        // (CEdesc_8, k=0) o=0 f=8 threads=512
        if stage_on[8] != 0 && tid < 512 {
          work_CEdesc_8(region_24(it - 8), region_24(it - 8), tid);
        }
        // (join_mergecmp_6, k=0) o=0 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_join_mergecmp_6(region_19(it - 6), region_19(it - 6), tid);
        }
        // (CEasc_15, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_CEasc_15(region_8(it - 5), region_8(it - 5), tid);
        }
      }
      case 15: {
        // (join_mergecmp_28, k=1) o=0 f=13 threads=512
        if stage_on[13] != 0 && tid < 512 {
          work_join_mergecmp_28(region_27(it - 13), region_27(it - 13), tid);
        }
        // (CEdesc_7, k=0) o=0 f=8 threads=512
        if stage_on[8] != 0 && tid < 512 {
          work_CEdesc_7(region_25(it - 8), region_25(it - 8), tid);
        }
        // (join_mergecmp_6, k=1) o=0 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_join_mergecmp_6(region_19(it - 6), region_19(it - 6), tid);
        }
        // (CEasc_16, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_CEasc_16(region_9(it - 5), region_9(it - 5), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
