// streamit_gpu artifact (wgsl)
// quality: heuristic (completed)
// II: 162404 (lower bound 162404, binding res_mii_sharp)
// schedule signature: 13d636dd52d112c95644671e7fb1f054
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_0_0__2_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_2_0__1_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_0_1__3_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_3_0__1_1: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_0_2__4_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_4_0__1_2: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_0_3__5_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_5_0__1_3: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_0_4__6_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_6_0__1_4: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_0_5__7_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_7_0__1_5: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_0_6__8_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_8_0__1_6: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_0_7__9_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_9_0__1_7: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_10_0__12_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_12_0__11_0: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_10_1__13_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_13_0__11_1: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_10_2__14_0: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_14_0__11_2: array<f32>;
@group(0) @binding(22) var<storage, read_write> buf_10_3__15_0: array<f32>;
@group(0) @binding(23) var<storage, read_write> buf_15_0__11_3: array<f32>;
@group(0) @binding(24) var<storage, read_write> buf_10_4__16_0: array<f32>;
@group(0) @binding(25) var<storage, read_write> buf_16_0__11_4: array<f32>;
@group(0) @binding(26) var<storage, read_write> buf_10_5__17_0: array<f32>;
@group(0) @binding(27) var<storage, read_write> buf_17_0__11_5: array<f32>;
@group(0) @binding(28) var<storage, read_write> buf_10_6__18_0: array<f32>;
@group(0) @binding(29) var<storage, read_write> buf_18_0__11_6: array<f32>;
@group(0) @binding(30) var<storage, read_write> buf_10_7__19_0: array<f32>;
@group(0) @binding(31) var<storage, read_write> buf_19_0__11_7: array<f32>;
@group(0) @binding(32) var<storage, read_write> buf_1_0__10_0: array<f32>;
@group(0) @binding(33) var<storage, read> stream_in: array<f32>;
@group(0) @binding(34) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(35) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 6>;

fn region_0(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_1(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 65536; }
fn region_2(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_3(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_4(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_5(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_6(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_7(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_8(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_9(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_10(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_11(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 0; }
fn region_12(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_13(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_14(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_15(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_16(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_17(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_18(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }
fn region_19(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 8192; }

fn work_split_fft_rank1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t16); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_fft_rank1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t16); _push++;
  let _t17: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t17); _push++;
  let _t18: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t18); _push++;
  let _t19: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t19); _push++;
  let _t20: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t20); _push++;
  let _t21: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t21); _push++;
  let _t22: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t22); _push++;
  let _t23: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t23); _push++;
  let _t24: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t24); _push++;
  let _t25: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t25); _push++;
  let _t26: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t26); _push++;
  let _t27: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t27); _push++;
  let _t28: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t28); _push++;
  let _t29: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t29); _push++;
  let _t30: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t30); _push++;
  let _t31: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t31); _push++;
  let _t32: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t32); _push++;
  let _t33: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t33); _push++;
  let _t34: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t34); _push++;
  let _t35: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t35); _push++;
  let _t36: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t36); _push++;
  let _t37: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t37); _push++;
  let _t38: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t38); _push++;
  let _t39: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t39); _push++;
  let _t40: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t40); _push++;
  let _t41: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t41); _push++;
  let _t42: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t42); _push++;
  let _t43: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t43); _push++;
  let _t44: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t44); _push++;
  let _t45: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t45); _push++;
  let _t46: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t46); _push++;
  let _t47: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t47); _push++;
  let _t48: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t48); _push++;
  let _t49: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t49); _push++;
  let _t50: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t50); _push++;
  let _t51: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t51); _push++;
  let _t52: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t52); _push++;
  let _t53: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t53); _push++;
  let _t54: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t54); _push++;
  let _t55: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t55); _push++;
  let _t56: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t56); _push++;
  let _t57: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t57); _push++;
  let _t58: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t58); _push++;
  let _t59: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t59); _push++;
  let _t60: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t60); _push++;
  let _t61: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t61); _push++;
  let _t62: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t62); _push++;
  let _t63: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t63); _push++;
  let _t64: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t64); _push++;
  let _t65: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t65); _push++;
  let _t66: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t66); _push++;
  let _t67: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t67); _push++;
  let _t68: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t68); _push++;
  let _t69: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t69); _push++;
  let _t70: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t70); _push++;
  let _t71: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t71); _push++;
  let _t72: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t72); _push++;
  let _t73: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t73); _push++;
  let _t74: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t74); _push++;
  let _t75: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t75); _push++;
  let _t76: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t76); _push++;
  let _t77: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t77); _push++;
  let _t78: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t78); _push++;
  let _t79: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t79); _push++;
  let _t80: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t80); _push++;
  let _t81: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t81); _push++;
  let _t82: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t82); _push++;
  let _t83: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t83); _push++;
  let _t84: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t84); _push++;
  let _t85: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t85); _push++;
  let _t86: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t86); _push++;
  let _t87: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t87); _push++;
  let _t88: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t88); _push++;
  let _t89: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t89); _push++;
  let _t90: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t90); _push++;
  let _t91: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t91); _push++;
  let _t92: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t92); _push++;
  let _t93: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t93); _push++;
  let _t94: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t94); _push++;
  let _t95: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t95); _push++;
  let _t96: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t96); _push++;
  let _t97: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t97); _push++;
  let _t98: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t98); _push++;
  let _t99: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t99); _push++;
  let _t100: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t100); _push++;
  let _t101: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t101); _push++;
  let _t102: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t102); _push++;
  let _t103: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t103); _push++;
  let _t104: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t104); _push++;
  let _t105: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t105); _push++;
  let _t106: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t106); _push++;
  let _t107: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t107); _push++;
  let _t108: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t108); _push++;
  let _t109: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t109); _push++;
  let _t110: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t110); _push++;
  let _t111: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t111); _push++;
  let _t112: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t112); _push++;
  let _t113: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t113); _push++;
  let _t114: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t114); _push++;
  let _t115: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t115); _push++;
  let _t116: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t116); _push++;
  let _t117: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t117); _push++;
  let _t118: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t118); _push++;
  let _t119: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t119); _push++;
  let _t120: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t120); _push++;
  let _t121: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t121); _push++;
  let _t122: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t122); _push++;
  let _t123: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t123); _push++;
  let _t124: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t124); _push++;
  let _t125: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t125); _push++;
  let _t126: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t126); _push++;
  let _t127: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t127); _push++;
  let _t128: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t128); _push++;
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j0_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j0_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j0_twc: array<f32, 8> = array<f32, 8>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f);
var<private> DFT8Tw_j0_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f);

fn work_DFT8Tw_j0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j0_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j0_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j0_twc[k]) - (si * DFT8Tw_j0_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j0_tws[k]) + (si * DFT8Tw_j0_twc[k]));
    buf_2_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_2_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j1_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j1_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j1_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.995184727f, 0.98078528f, 0.956940336f, 0.923879533f, 0.881921264f, 0.831469612f, 0.773010453f);
var<private> DFT8Tw_j1_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.0980171403f, -0.195090322f, -0.290284677f, -0.382683432f, -0.471396737f, -0.555570233f, -0.634393284f);

fn work_DFT8Tw_j1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j1_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j1_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j1_twc[k]) - (si * DFT8Tw_j1_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j1_tws[k]) + (si * DFT8Tw_j1_twc[k]));
    buf_3_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_3_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j2_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j2_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j2_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.98078528f, 0.923879533f, 0.831469612f, 0.707106781f, 0.555570233f, 0.382683432f, 0.195090322f);
var<private> DFT8Tw_j2_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.195090322f, -0.382683432f, -0.555570233f, -0.707106781f, -0.831469612f, -0.923879533f, -0.98078528f);

fn work_DFT8Tw_j2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_2__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_2__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j2_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j2_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j2_twc[k]) - (si * DFT8Tw_j2_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j2_tws[k]) + (si * DFT8Tw_j2_twc[k]));
    buf_4_0__1_2[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_4_0__1_2[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j3_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j3_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j3_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.956940336f, 0.831469612f, 0.634393284f, 0.382683432f, 0.0980171403f, -0.195090322f, -0.471396737f);
var<private> DFT8Tw_j3_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.290284677f, -0.555570233f, -0.773010453f, -0.923879533f, -0.995184727f, -0.98078528f, -0.881921264f);

fn work_DFT8Tw_j3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_3__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_3__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j3_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j3_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j3_twc[k]) - (si * DFT8Tw_j3_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j3_tws[k]) + (si * DFT8Tw_j3_twc[k]));
    buf_5_0__1_3[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_5_0__1_3[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j4_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j4_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j4_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.923879533f, 0.707106781f, 0.382683432f, 6.123234e-17f, -0.382683432f, -0.707106781f, -0.923879533f);
var<private> DFT8Tw_j4_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.382683432f, -0.707106781f, -0.923879533f, -1.0f, -0.923879533f, -0.707106781f, -0.382683432f);

fn work_DFT8Tw_j4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_4__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_4__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j4_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j4_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j4_twc[k]) - (si * DFT8Tw_j4_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j4_tws[k]) + (si * DFT8Tw_j4_twc[k]));
    buf_6_0__1_4[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_6_0__1_4[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j5_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j5_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j5_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.881921264f, 0.555570233f, 0.0980171403f, -0.382683432f, -0.773010453f, -0.98078528f, -0.956940336f);
var<private> DFT8Tw_j5_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.471396737f, -0.831469612f, -0.995184727f, -0.923879533f, -0.634393284f, -0.195090322f, 0.290284677f);

fn work_DFT8Tw_j5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_5__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_5__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j5_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j5_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j5_twc[k]) - (si * DFT8Tw_j5_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j5_tws[k]) + (si * DFT8Tw_j5_twc[k]));
    buf_7_0__1_5[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_7_0__1_5[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j6_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j6_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j6_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.831469612f, 0.382683432f, -0.195090322f, -0.707106781f, -0.98078528f, -0.923879533f, -0.555570233f);
var<private> DFT8Tw_j6_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.555570233f, -0.923879533f, -0.98078528f, -0.707106781f, -0.195090322f, 0.382683432f, 0.831469612f);

fn work_DFT8Tw_j6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_6__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_6__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j6_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j6_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j6_twc[k]) - (si * DFT8Tw_j6_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j6_tws[k]) + (si * DFT8Tw_j6_twc[k]));
    buf_8_0__1_6[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_8_0__1_6[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8Tw_j7_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8Tw_j7_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);
var<private> DFT8Tw_j7_twc: array<f32, 8> = array<f32, 8>(1.0f, 0.773010453f, 0.195090322f, -0.471396737f, -0.923879533f, -0.956940336f, -0.555570233f, 0.0980171403f);
var<private> DFT8Tw_j7_tws: array<f32, 8> = array<f32, 8>(-0.0f, -0.634393284f, -0.98078528f, -0.881921264f, -0.382683432f, 0.290284677f, 0.831469612f, 0.995184727f);

fn work_DFT8Tw_j7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_7__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_0_7__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8Tw_j7_cosT[((k * 8) + j)];
      var s: f32 = DFT8Tw_j7_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    var pr: f32 = ((sr * DFT8Tw_j7_twc[k]) - (si * DFT8Tw_j7_tws[k]));
    var pi: f32 = ((sr * DFT8Tw_j7_tws[k]) + (si * DFT8Tw_j7_twc[k]));
    buf_9_0__1_7[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pr); _push++;
    buf_9_0__1_7[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(pi); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_split_fft_rank2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t16); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_fft_rank2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t16); _push++;
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k0_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k0_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k0_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k0_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k1_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k1_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k1_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k1_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k2_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k2_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_2__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_2__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k2_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k2_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_14_0__11_2[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_14_0__11_2[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k3_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k3_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_3__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_3__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k3_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k3_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_15_0__11_3[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_15_0__11_3[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k4_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k4_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_4__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_4__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k4_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k4_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_16_0__11_4[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_16_0__11_4[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k5_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k5_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_5__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_5__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k5_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k5_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_17_0__11_5[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_17_0__11_5[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k6_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k6_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_6__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_6__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k6_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k6_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_18_0__11_6[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_18_0__11_6[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DFT8_k7_cosT: array<f32, 64> = array<f32, 64>(1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f);
var<private> DFT8_k7_sinT: array<f32, 64> = array<f32, 64>(-0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f);

fn work_DFT8_k7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var re: array<f32, 8>;
  var im: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_7__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    let _t2: f32 = buf_10_7__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var sr: f32 = 0.0f;
    var si: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      var c: f32 = DFT8_k7_cosT[((k * 8) + j)];
      var s: f32 = DFT8_k7_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    buf_19_0__11_7[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(sr); _push++;
    buf_19_0__11_7[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(si); _push++;
  }
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 6)
  if tid == 0 { for (var s: i32 = 0; s < 6; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 6; it++) {
    if tid == 0 {
      for (var s: i32 = 5; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (DFT8Tw_j0, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (split_fft_rank1, k=4) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_fft_rank1, k=3) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_fft_rank1, k=2) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_fft_rank1, k=1) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_fft_rank1, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
      }
      case 1: {
        // (split_fft_rank2, k=1) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (split_fft_rank2, k=0) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (DFT8Tw_j1, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j1(region_3(it - 1), region_3(it - 1), tid);
        }
        // (split_fft_rank1, k=7) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_fft_rank1, k=6) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_fft_rank1, k=5) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_fft_rank1(region_0(it - 0), region_0(it - 0), tid);
        }
      }
      case 2: {
        // (split_fft_rank2, k=6) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (split_fft_rank2, k=5) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (split_fft_rank2, k=4) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (split_fft_rank2, k=3) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (split_fft_rank2, k=2) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (DFT8Tw_j2, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j2(region_4(it - 1), region_4(it - 1), tid);
        }
      }
      case 3: {
        // (join_fft_rank2, k=3) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_fft_rank2, k=2) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_fft_rank2, k=1) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_fft_rank2, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (split_fft_rank2, k=7) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_fft_rank2(region_10(it - 3), region_10(it - 3), tid);
        }
        // (DFT8Tw_j3, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j3(region_5(it - 1), region_5(it - 1), tid);
        }
      }
      case 4: {
        // (join_fft_rank2, k=7) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_fft_rank2, k=6) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_fft_rank2, k=5) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_fft_rank2, k=4) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_fft_rank2(region_11(it - 5), region_11(it - 5), tid);
        }
        // (DFT8Tw_j4, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j4(region_6(it - 1), region_6(it - 1), tid);
        }
      }
      case 5: {
        // (DFT8Tw_j5, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j5(region_7(it - 1), region_7(it - 1), tid);
        }
      }
      case 6: {
        // (DFT8Tw_j6, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j6(region_8(it - 1), region_8(it - 1), tid);
        }
      }
      case 7: {
        // (DFT8Tw_j7, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DFT8Tw_j7(region_9(it - 1), region_9(it - 1), tid);
        }
      }
      case 8: {
        // (DFT8_k0, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k0(region_12(it - 4), region_12(it - 4), tid);
        }
        // (join_fft_rank1, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_fft_rank1(region_1(it - 2), region_1(it - 2), tid);
        }
      }
      case 9: {
        // (DFT8_k1, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k1(region_13(it - 4), region_13(it - 4), tid);
        }
      }
      case 10: {
        // (DFT8_k2, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k2(region_14(it - 4), region_14(it - 4), tid);
        }
      }
      case 11: {
        // (DFT8_k3, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k3(region_15(it - 4), region_15(it - 4), tid);
        }
      }
      case 12: {
        // (DFT8_k4, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k4(region_16(it - 4), region_16(it - 4), tid);
        }
      }
      case 13: {
        // (DFT8_k5, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k5(region_17(it - 4), region_17(it - 4), tid);
        }
      }
      case 14: {
        // (DFT8_k6, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k6(region_18(it - 4), region_18(it - 4), tid);
        }
      }
      case 15: {
        // (DFT8_k7, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DFT8_k7(region_19(it - 4), region_19(it - 4), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
