// streamit_gpu artifact (wgsl)
// quality: heuristic (completed)
// II: 224819 (lower bound 224819, binding no_wrap)
// schedule signature: 346d4e6ed2c6446debbd0a7f69fde47f
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_0_0__2_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_2_0__1_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_3_0__5_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_5_0__4_0: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_3_1__6_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_6_0__4_1: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_3_2__7_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_7_0__4_2: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_3_3__8_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_8_0__4_3: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_3_4__9_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_9_0__4_4: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_3_5__10_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_10_0__4_5: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_3_6__11_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_11_0__4_6: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_3_7__12_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_12_0__4_7: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_4_0__13_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_0_1__3_0: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_13_0__1_1: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_1_0__14_0: array<f32>;
@group(0) @binding(22) var<storage, read> stream_in: array<f32>;
@group(0) @binding(23) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(24) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 6>;

fn region_0(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 32768; }
fn region_1(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 524288; }
fn region_2(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 262144; }
fn region_3(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_4(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 32768; }
fn region_5(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_6(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_7(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_8(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_9(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_10(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_11(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_12(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_13(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 262144; }
fn region_14(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 0; }

fn work_split_opsplit(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t16); _push++;
  let _t17: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t17); _push++;
  let _t18: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t18); _push++;
  let _t19: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t19); _push++;
  let _t20: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t20); _push++;
  let _t21: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t21); _push++;
  let _t22: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t22); _push++;
  let _t23: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t23); _push++;
  let _t24: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t24); _push++;
  let _t25: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t25); _push++;
  let _t26: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t26); _push++;
  let _t27: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t27); _push++;
  let _t28: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t28); _push++;
  let _t29: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t29); _push++;
  let _t30: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t30); _push++;
  let _t31: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t31); _push++;
  let _t32: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t32); _push++;
  let _t33: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t33); _push++;
  let _t34: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t34); _push++;
  let _t35: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t35); _push++;
  let _t36: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t36); _push++;
  let _t37: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t37); _push++;
  let _t38: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t38); _push++;
  let _t39: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t39); _push++;
  let _t40: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t40); _push++;
  let _t41: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t41); _push++;
  let _t42: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t42); _push++;
  let _t43: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t43); _push++;
  let _t44: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t44); _push++;
  let _t45: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t45); _push++;
  let _t46: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t46); _push++;
  let _t47: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t47); _push++;
  let _t48: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t48); _push++;
  let _t49: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t49); _push++;
  let _t50: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t50); _push++;
  let _t51: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t51); _push++;
  let _t52: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t52); _push++;
  let _t53: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t53); _push++;
  let _t54: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t54); _push++;
  let _t55: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t55); _push++;
  let _t56: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t56); _push++;
  let _t57: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t57); _push++;
  let _t58: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t58); _push++;
  let _t59: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t59); _push++;
  let _t60: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t60); _push++;
  let _t61: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t61); _push++;
  let _t62: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t62); _push++;
  let _t63: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t63); _push++;
  let _t64: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t64); _push++;
  let _t65: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t65); _push++;
  let _t66: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t66); _push++;
  let _t67: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t67); _push++;
  let _t68: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t68); _push++;
  let _t69: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t69); _push++;
  let _t70: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t70); _push++;
  let _t71: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t71); _push++;
  let _t72: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t72); _push++;
  let _t73: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t73); _push++;
  let _t74: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t74); _push++;
  let _t75: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t75); _push++;
  let _t76: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t76); _push++;
  let _t77: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t77); _push++;
  let _t78: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t78); _push++;
  let _t79: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t79); _push++;
  let _t80: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t80); _push++;
  let _t81: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t81); _push++;
  let _t82: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t82); _push++;
  let _t83: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t83); _push++;
  let _t84: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t84); _push++;
  let _t85: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t85); _push++;
  let _t86: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t86); _push++;
  let _t87: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t87); _push++;
  let _t88: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t88); _push++;
  let _t89: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t89); _push++;
  let _t90: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t90); _push++;
  let _t91: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t91); _push++;
  let _t92: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t92); _push++;
  let _t93: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t93); _push++;
  let _t94: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t94); _push++;
  let _t95: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t95); _push++;
  let _t96: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t96); _push++;
  let _t97: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t97); _push++;
  let _t98: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t98); _push++;
  let _t99: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t99); _push++;
  let _t100: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t100); _push++;
  let _t101: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t101); _push++;
  let _t102: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t102); _push++;
  let _t103: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t103); _push++;
  let _t104: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t104); _push++;
  let _t105: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t105); _push++;
  let _t106: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t106); _push++;
  let _t107: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t107); _push++;
  let _t108: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t108); _push++;
  let _t109: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t109); _push++;
  let _t110: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t110); _push++;
  let _t111: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t111); _push++;
  let _t112: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t112); _push++;
  let _t113: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t113); _push++;
  let _t114: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t114); _push++;
  let _t115: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t115); _push++;
  let _t116: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t116); _push++;
  let _t117: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t117); _push++;
  let _t118: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t118); _push++;
  let _t119: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t119); _push++;
  let _t120: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t120); _push++;
  let _t121: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t121); _push++;
  let _t122: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t122); _push++;
  let _t123: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t123); _push++;
  let _t124: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t124); _push++;
  let _t125: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t125); _push++;
  let _t126: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t126); _push++;
  let _t127: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t127); _push++;
  let _t128: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = f32(_t128); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_opsplit(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  buf_1_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = f32(_t16); _push++;
  _ = _pop;
  _ = _push;
}

fn work_RepeatRowsA(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var m: array<f32, 64>;
  for (var j: i32 = 0; j < 64; j++) {
    let _t1: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
    m[j] = _t1;
  }
  for (var r: i32 = 0; r < 8; r++) {
    for (var t: i32 = 0; t < 8; t++) {
      for (var c: i32 = 0; c < 8; c++) {
        buf_2_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 512 + (tid % 128))] = f32(m[((r * 8) + c)]); _push++;
      }
    }
  }
  _ = _pop;
  _ = _push;
}

fn work_split_transpose_B(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_transpose_B(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t16); _push++;
  let _t17: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t17); _push++;
  let _t18: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t18); _push++;
  let _t19: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t19); _push++;
  let _t20: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t20); _push++;
  let _t21: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t21); _push++;
  let _t22: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t22); _push++;
  let _t23: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t23); _push++;
  let _t24: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t24); _push++;
  let _t25: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t25); _push++;
  let _t26: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t26); _push++;
  let _t27: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t27); _push++;
  let _t28: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t28); _push++;
  let _t29: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t29); _push++;
  let _t30: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t30); _push++;
  let _t31: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t31); _push++;
  let _t32: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t32); _push++;
  let _t33: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t33); _push++;
  let _t34: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t34); _push++;
  let _t35: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t35); _push++;
  let _t36: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t36); _push++;
  let _t37: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t37); _push++;
  let _t38: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t38); _push++;
  let _t39: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t39); _push++;
  let _t40: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t40); _push++;
  let _t41: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t41); _push++;
  let _t42: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t42); _push++;
  let _t43: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t43); _push++;
  let _t44: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t44); _push++;
  let _t45: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t45); _push++;
  let _t46: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t46); _push++;
  let _t47: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t47); _push++;
  let _t48: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t48); _push++;
  let _t49: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t49); _push++;
  let _t50: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t50); _push++;
  let _t51: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t51); _push++;
  let _t52: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t52); _push++;
  let _t53: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t53); _push++;
  let _t54: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t54); _push++;
  let _t55: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t55); _push++;
  let _t56: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t56); _push++;
  let _t57: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t57); _push++;
  let _t58: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t58); _push++;
  let _t59: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t59); _push++;
  let _t60: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t60); _push++;
  let _t61: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t61); _push++;
  let _t62: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t62); _push++;
  let _t63: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t63); _push++;
  let _t64: f32 = buf_5_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_4_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t64); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_0__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_5_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_1__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_6_0__4_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_2__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_7_0__4_2[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_3__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_8_0__4_3[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_4__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_9_0__4_4[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_5__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_10_0__4_5[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_6__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_11_0__4_6[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_TB7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_7__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_12_0__4_7[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  _ = _pop;
  _ = _push;
}

fn work_RepeatB(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var g: array<f32, 64>;
  for (var j: i32 = 0; j < 64; j++) {
    let _t1: f32 = buf_4_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
    g[j] = _t1;
  }
  for (var t: i32 = 0; t < 8; t++) {
    for (var j: i32 = 0; j < 64; j++) {
      buf_13_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 512 + (tid % 128))] = f32(g[j]); _push++;
    }
  }
  _ = _pop;
  _ = _push;
}

fn work_DotProduct(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var a: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_1_0__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    a[j] = _t1;
  }
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 8; j++) {
    let _t2: f32 = buf_1_0__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    acc = (acc + (a[j] * _t2));
  }
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 6)
  if tid == 0 { for (var s: i32 = 0; s < 6; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 6; it++) {
    if tid == 0 {
      for (var s: i32 = 5; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (RepeatRowsA, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_RepeatRowsA(region_2(it - 1), region_2(it - 1), tid);
        }
      }
      case 1: {
        // (join_transpose_B, k=0) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_join_transpose_B(region_4(it - 3), region_4(it - 3), tid);
        }
        // (split_opsplit, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_opsplit(region_0(it - 0), region_0(it - 0), tid);
        }
        // (DotProduct, k=2) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=1) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=0) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (RepeatB, k=0) o=16946 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_RepeatB(region_13(it - 3), region_13(it - 3), tid);
        }
        // (split_transpose_B, k=0) o=33330 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 0), region_3(it - 0), tid);
        }
        // (TB0, k=0) o=35940 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_TB0(region_5(it - 0), region_5(it - 0), tid);
        }
      }
      case 2: {
        // (split_transpose_B, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (TB0, k=1) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB0(region_5(it - 1), region_5(it - 1), tid);
        }
        // (DotProduct, k=36) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=35) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=34) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=33) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=32) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=31) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=30) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=29) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=28) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=27) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=26) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=25) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=24) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=23) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=22) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=21) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=20) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=19) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=18) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=17) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=16) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=15) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=14) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=13) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=12) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=11) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=10) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=9) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=8) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=7) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=6) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=5) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=4) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=3) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
      }
      case 3: {
        // (TB0, k=4) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB0(region_5(it - 2), region_5(it - 2), tid);
        }
        // (TB0, k=3) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB0(region_5(it - 2), region_5(it - 2), tid);
        }
        // (TB0, k=2) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB0(region_5(it - 2), region_5(it - 2), tid);
        }
        // (DotProduct, k=63) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=62) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=61) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=60) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=59) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=58) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=57) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=56) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=55) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=54) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=53) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=52) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=51) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=50) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=49) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=48) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=47) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=46) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=45) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=44) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=43) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=42) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=41) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=40) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=39) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=38) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (DotProduct, k=37) o=16946 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_DotProduct(region_14(it - 5), region_14(it - 5), tid);
        }
        // (join_opsplit, k=9) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=8) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=7) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=6) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=5) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=4) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=3) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=2) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=1) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=0) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
      }
      case 4: {
        // (TB0, k=5) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB0(region_5(it - 2), region_5(it - 2), tid);
        }
        // (join_opsplit, k=57) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=56) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=55) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=54) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=53) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=52) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=51) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=50) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=49) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=48) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=47) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=46) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=45) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=44) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=43) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=42) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=41) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=40) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=39) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=38) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=37) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=36) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=35) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=34) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=33) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=32) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=31) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=30) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=29) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=28) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=27) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=26) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=25) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=24) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=23) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=22) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=21) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=20) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=19) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=18) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=17) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=16) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=15) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=14) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=13) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=12) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=11) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=10) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
      }
      case 5: {
        // (TB7, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB7(region_12(it - 2), region_12(it - 2), tid);
        }
        // (TB6, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB6(region_11(it - 2), region_11(it - 2), tid);
        }
        // (TB5, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB5(region_10(it - 2), region_10(it - 2), tid);
        }
        // (TB4, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB4(region_9(it - 2), region_9(it - 2), tid);
        }
        // (TB3, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB3(region_8(it - 2), region_8(it - 2), tid);
        }
        // (TB2, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB2(region_7(it - 2), region_7(it - 2), tid);
        }
        // (TB1, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_TB1(region_6(it - 2), region_6(it - 2), tid);
        }
        // (split_transpose_B, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (split_transpose_B, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (split_transpose_B, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (split_transpose_B, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (split_transpose_B, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (split_transpose_B, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_transpose_B(region_3(it - 1), region_3(it - 1), tid);
        }
        // (TB7, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB7, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB7, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB7, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB7, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB7, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB6, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB6, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB6, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB6, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB6, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB6, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB5, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB5, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB5, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB5, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB5, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB5, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB4, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB4, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB4, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB4, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB4, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB4, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB3, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB3, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB3, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB3, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB3, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB3, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB2, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB2, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB2, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB2, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB2, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB2, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB1, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
        // (TB1, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
        // (TB1, k=5) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
        // (TB1, k=4) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
        // (TB1, k=3) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
        // (TB1, k=2) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
        // (TB0, k=7) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB0(region_5(it - 1), region_5(it - 1), tid);
        }
        // (TB0, k=6) o=2610 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB0(region_5(it - 1), region_5(it - 1), tid);
        }
        // (join_opsplit, k=63) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=62) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=61) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=60) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=59) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (join_opsplit, k=58) o=16946 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_opsplit(region_1(it - 4), region_1(it - 4), tid);
        }
        // (TB7, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB7(region_12(it - 1), region_12(it - 1), tid);
        }
        // (TB6, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB6(region_11(it - 1), region_11(it - 1), tid);
        }
        // (TB5, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB5(region_10(it - 1), region_10(it - 1), tid);
        }
        // (TB4, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB4(region_9(it - 1), region_9(it - 1), tid);
        }
        // (TB3, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB3(region_8(it - 1), region_8(it - 1), tid);
        }
        // (TB2, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB2(region_7(it - 1), region_7(it - 1), tid);
        }
        // (TB1, k=0) o=33330 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_TB1(region_6(it - 1), region_6(it - 1), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
