/* streamit_gpu artifact (opencl)
 * quality: heuristic (completed)
 * II: 33636 (lower bound 33636, binding res_mii_sharp)
 * schedule signature: 715546b5ce49a8a44e84656ea3e01158
 * program-scope __global state requires OpenCL C 2.0
 */

static inline int region_0(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_1(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_2(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_3(int it) { return ((it % 8) + 8) % 8 * 5120; }
static inline int region_4(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_5(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_6(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_7(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_8(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_9(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_10(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_11(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_12(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_13(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_14(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_15(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_16(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_17(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_18(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_19(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_20(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_21(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_22(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_23(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_24(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_25(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_26(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_27(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_28(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_29(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_30(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_31(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_32(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_33(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_34(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_35(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_36(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_37(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_38(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_39(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_40(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_41(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_42(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_43(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_44(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_45(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_46(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_47(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_48(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_49(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_50(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_51(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_52(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_53(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_54(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_55(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_56(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_57(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_58(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_59(int it) { return ((it % 8) + 8) % 8 * 1024; }
static inline int region_60(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_61(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_62(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_63(int it) { return ((it % 8) + 8) % 8 * 512; }
static inline int region_64(int it) { return ((it % 8) + 8) % 8 * 0; }

__constant float FrontLPF_taps[28] = { 0.00133380195f, 0.00166377302f, -0.0025234102f, -0.00402183209f, 0.00628579642f, 0.00947459282f, -0.0138085066f, -0.0196250473f, 0.0274976855f, 0.0385135313f, -0.0550267643f, -0.0832184333f, 0.145890048f, 0.448758006f, 0.448758006f, 0.145890048f, -0.0832184333f, -0.0550267643f, 0.0385135313f, 0.0274976855f, -0.0196250473f, -0.0138085066f, 0.00947459282f, 0.00628579642f, -0.00402183209f, -0.0025234102f, 0.00166377302f, 0.00133380195f };
static void work_FrontLPF(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * FrontLPF_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_FMDemod(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float x = (in[(128 * (_pop + (0)) + (tid / 128) * 128 * 1 + (tid % 128))] * in[(128 * (_pop + (1)) + (tid / 128) * 128 * 1 + (tid % 128))]);
  float y = (x / (1.0f + ((0.28f * x) * x)));
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (0.5f * y); _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d = _t1;
  (void)_pop; (void)_push;
}

static void work_split_equalizer(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_equalizer(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = _t10; _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF0_hi_taps[28] = { -0.000638954838f, -0.00166377302f, -0.00335766562f, -0.00566248714f, -0.00765153057f, -0.00753141007f, -0.00305487997f, 0.00774312141f, 0.0257168311f, 0.0499867523f, 0.0777811971f, 0.104861343f, 0.12645479f, 0.138442352f, 0.138442352f, 0.12645479f, 0.104861343f, 0.0777811971f, 0.0499867523f, 0.0257168311f, 0.00774312141f, -0.00305487997f, -0.00753141007f, -0.00765153057f, -0.00566248714f, -0.00335766562f, -0.00166377302f, -0.000638954838f };
static void work_EqLPF0_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF0_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF0_lo_taps[28] = { 0.00160831878f, 0.00217382421f, 0.0034700391f, 0.00567019611f, 0.00886205531f, 0.0130288795f, 0.0180416833f, 0.023664182f, 0.0295703628f, 0.0353730701f, 0.0406606274f, 0.0450374915f, 0.0481643737f, 0.0497932537f, 0.0497932537f, 0.0481643737f, 0.0450374915f, 0.0406606274f, 0.0353730701f, 0.0295703628f, 0.023664182f, 0.0180416833f, 0.0130288795f, 0.00886205531f, 0.00567019611f, 0.0034700391f, 0.00217382421f, 0.00160831878f };
static void work_EqLPF0_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF0_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain0(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.0f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF1_hi_taps[28] = { -0.000610999209f, 0.00090042747f, 0.00320473796f, 0.00548614167f, 0.00488051558f, -0.00188794937f, -0.0148493425f, -0.0277505841f, -0.028762478f, -0.00597682831f, 0.0447466767f, 0.114436891f, 0.182338246f, 0.224329154f, 0.224329154f, 0.182338246f, 0.114436891f, 0.0447466767f, -0.00597682831f, -0.028762478f, -0.0277505841f, -0.0148493425f, -0.00188794937f, 0.00488051558f, 0.00548614167f, 0.00320473796f, 0.00090042747f, -0.000610999209f };
static void work_EqLPF1_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF1_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF1_lo_taps[28] = { -0.000638954838f, -0.00166377302f, -0.00335766562f, -0.00566248714f, -0.00765153057f, -0.00753141007f, -0.00305487997f, 0.00774312141f, 0.0257168311f, 0.0499867523f, 0.0777811971f, 0.104861343f, 0.12645479f, 0.138442352f, 0.138442352f, 0.12645479f, 0.104861343f, 0.0777811971f, 0.0499867523f, 0.0257168311f, 0.00774312141f, -0.00305487997f, -0.00753141007f, -0.00765153057f, -0.00566248714f, -0.00335766562f, -0.00166377302f, -0.000638954838f };
static void work_EqLPF1_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF1_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.1f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF2_hi_taps[28] = { 0.00159263956f, 3.0270405e-18f, -0.00301310319f, -0.0051464115f, -0.00111414458f, 0.0103241822f, 0.0185724003f, 0.00690214114f, -0.0266203939f, -0.0535016094f, -0.0286473041f, 0.0691756452f, 0.205912559f, 0.305739987f, 0.305739987f, 0.205912559f, 0.0691756452f, -0.0286473041f, -0.0535016094f, -0.0266203939f, 0.00690214114f, 0.0185724003f, 0.0103241822f, -0.00111414458f, -0.0051464115f, -0.00301310319f, 3.0270405e-18f, 0.00159263956f };
static void work_EqLPF2_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF2_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF2_lo_taps[28] = { -0.000610999209f, 0.00090042747f, 0.00320473796f, 0.00548614167f, 0.00488051558f, -0.00188794937f, -0.0148493425f, -0.0277505841f, -0.028762478f, -0.00597682831f, 0.0447466767f, 0.114436891f, 0.182338246f, 0.224329154f, 0.224329154f, 0.182338246f, 0.114436891f, 0.0447466767f, -0.00597682831f, -0.028762478f, -0.0277505841f, -0.0148493425f, -0.00188794937f, 0.00488051558f, 0.00548614167f, 0.00320473796f, 0.00090042747f, -0.000610999209f };
static void work_EqLPF2_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF2_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.2f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF3_hi_taps[28] = { -0.00187488947f, -0.00090042747f, 0.00278507589f, 0.00465341427f, -0.00287945046f, -0.013384223f, -0.00455876246f, 0.0241080061f, 0.027926208f, -0.0254864329f, -0.0762027239f, -0.00923374403f, 0.193000517f, 0.381050487f, 0.381050487f, 0.193000517f, -0.00923374403f, -0.0762027239f, -0.0254864329f, 0.027926208f, 0.0241080061f, -0.00455876246f, -0.013384223f, -0.00287945046f, 0.00465341427f, 0.00278507589f, -0.00090042747f, -0.00187488947f };
static void work_EqLPF3_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF3_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF3_lo_taps[28] = { 0.00159263956f, 3.0270405e-18f, -0.00301310319f, -0.0051464115f, -0.00111414458f, 0.0103241822f, 0.0185724003f, 0.00690214114f, -0.0266203939f, -0.0535016094f, -0.0286473041f, 0.0691756452f, 0.205912559f, 0.305739987f, 0.305739987f, 0.205912559f, 0.0691756452f, -0.0286473041f, -0.0535016094f, -0.0266203939f, 0.00690214114f, 0.0185724003f, 0.0103241822f, -0.00111414458f, -0.0051464115f, -0.00301310319f, 3.0270405e-18f, 0.00159263956f };
static void work_EqLPF3_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF3_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain3(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.3f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF4_hi_taps[28] = { 0.00133380195f, 0.00166377302f, -0.0025234102f, -0.00402183209f, 0.00628579642f, 0.00947459282f, -0.0138085066f, -0.0196250473f, 0.0274976855f, 0.0385135313f, -0.0550267643f, -0.0832184333f, 0.145890048f, 0.448758006f, 0.448758006f, 0.145890048f, -0.0832184333f, -0.0550267643f, 0.0385135313f, 0.0274976855f, -0.0196250473f, -0.0138085066f, 0.00947459282f, 0.00628579642f, -0.00402183209f, -0.0025234102f, 0.00166377302f, 0.00133380195f };
static void work_EqLPF4_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF4_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF4_lo_taps[28] = { -0.00187488947f, -0.00090042747f, 0.00278507589f, 0.00465341427f, -0.00287945046f, -0.013384223f, -0.00455876246f, 0.0241080061f, 0.027926208f, -0.0254864329f, -0.0762027239f, -0.00923374403f, 0.193000517f, 0.381050487f, 0.381050487f, 0.193000517f, -0.00923374403f, -0.0762027239f, -0.0254864329f, 0.027926208f, 0.0241080061f, -0.00455876246f, -0.013384223f, -0.00287945046f, 0.00465341427f, 0.00278507589f, -0.00090042747f, -0.00187488947f };
static void work_EqLPF4_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF4_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain4(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.4f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF5_hi_taps[28] = { -0.000206989725f, -0.00217382421f, 0.00223126653f, 0.00327047432f, -0.00841018658f, -0.000631183934f, 0.0189886122f, -0.0137509639f, -0.0270623783f, 0.0481354955f, 0.0157808255f, -0.117325842f, 0.0729288181f, 0.507511599f, 0.507511599f, 0.0729288181f, -0.117325842f, 0.0157808255f, 0.0481354955f, -0.0270623783f, -0.0137509639f, 0.0189886122f, -0.000631183934f, -0.00841018658f, 0.00327047432f, 0.00223126653f, -0.00217382421f, -0.000206989725f };
static void work_EqLPF5_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF5_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF5_lo_taps[28] = { 0.00133380195f, 0.00166377302f, -0.0025234102f, -0.00402183209f, 0.00628579642f, 0.00947459282f, -0.0138085066f, -0.0196250473f, 0.0274976855f, 0.0385135313f, -0.0550267643f, -0.0832184333f, 0.145890048f, 0.448758006f, 0.448758006f, 0.145890048f, -0.0832184333f, -0.0550267643f, 0.0385135313f, 0.0274976855f, -0.0196250473f, -0.0138085066f, 0.00947459282f, 0.00628579642f, -0.00402183209f, -0.0025234102f, 0.00166377302f, 0.00133380195f };
static void work_EqLPF5_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF5_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain5(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.5f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF6_hi_taps[28] = { -0.0010107198f, 0.00235293037f, -0.00191217343f, -0.00242171743f, 0.00881936251f, -0.00854090629f, -0.00603453866f, 0.0268820649f, -0.0283478402f, -0.0102059778f, 0.0723548309f, -0.0952121073f, -0.0129549202f, 0.556138972f, 0.556138972f, -0.0129549202f, -0.0952121073f, 0.0723548309f, -0.0102059778f, -0.0283478402f, 0.0268820649f, -0.00603453866f, -0.00854090629f, 0.00881936251f, -0.00242171743f, -0.00191217343f, 0.00235293037f, -0.0010107198f };
static void work_EqLPF6_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF6_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF6_lo_taps[28] = { -0.000206989725f, -0.00217382421f, 0.00223126653f, 0.00327047432f, -0.00841018658f, -0.000631183934f, 0.0189886122f, -0.0137509639f, -0.0270623783f, 0.0481354955f, 0.0157808255f, -0.117325842f, 0.0729288181f, 0.507511599f, 0.507511599f, 0.0729288181f, -0.117325842f, 0.0157808255f, 0.0481354955f, -0.0270623783f, -0.0137509639f, 0.0189886122f, -0.000631183934f, -0.00841018658f, 0.00327047432f, 0.00223126653f, -0.00217382421f, -0.000206989725f };
static void work_EqLPF6_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF6_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain6(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.6f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF7_hi_taps[28] = { 0.00178458265f, -0.00217382421f, 0.00156998493f, 0.00150083853f, -0.00742987489f, 0.0132654237f, -0.0126825367f, -0.000435941012f, 0.0261718412f, -0.0541374335f, 0.0636680808f, -0.0274738667f, -0.0965431314f, 0.59366988f, 0.59366988f, -0.0965431314f, -0.0274738667f, 0.0636680808f, -0.0541374335f, 0.0261718412f, -0.000435941012f, -0.0126825367f, 0.0132654237f, -0.00742987489f, 0.00150083853f, 0.00156998493f, -0.00217382421f, 0.00178458265f };
static void work_EqLPF7_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF7_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF7_lo_taps[28] = { -0.0010107198f, 0.00235293037f, -0.00191217343f, -0.00242171743f, 0.00881936251f, -0.00854090629f, -0.00603453866f, 0.0268820649f, -0.0283478402f, -0.0102059778f, 0.0723548309f, -0.0952121073f, -0.0129549202f, 0.556138972f, 0.556138972f, -0.0129549202f, -0.0952121073f, 0.0723548309f, -0.0102059778f, -0.0283478402f, 0.0268820649f, -0.00603453866f, -0.00854090629f, 0.00881936251f, -0.00242171743f, -0.00191217343f, 0.00235293037f, -0.0010107198f };
static void work_EqLPF7_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF7_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain7(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.7f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf8(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf8(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF8_hi_taps[28] = { -0.00177476534f, 0.00166377302f, -0.00120883401f, -0.000535262628f, 0.00452510256f, -0.0110821334f, 0.0192877531f, -0.0266519987f, 0.029170019f, -0.0216311993f, -0.00244437259f, 0.0534295231f, -0.163024533f, 0.619355481f, 0.619355481f, -0.163024533f, 0.0534295231f, -0.00244437259f, -0.0216311993f, 0.029170019f, -0.0266519987f, 0.0192877531f, -0.0110821334f, 0.00452510256f, -0.000535262628f, -0.00120883401f, 0.00166377302f, -0.00177476534f };
static void work_EqLPF8_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF8_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF8_lo_taps[28] = { 0.00178458265f, -0.00217382421f, 0.00156998493f, 0.00150083853f, -0.00742987489f, 0.0132654237f, -0.0126825367f, -0.000435941012f, 0.0261718412f, -0.0541374335f, 0.0636680808f, -0.0274738667f, -0.0965431314f, 0.59366988f, 0.59366988f, -0.0965431314f, -0.0274738667f, 0.0636680808f, -0.0541374335f, 0.0261718412f, -0.000435941012f, -0.0126825367f, 0.0132654237f, -0.00742987489f, 0.00150083853f, 0.00156998493f, -0.00217382421f, 0.00178458265f };
static void work_EqLPF8_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF8_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract8(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain8(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.8f); _push++;
  (void)_pop; (void)_push;
}

static void work_split_bpf9(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float x = _t1;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = x; _push++;
  (void)_pop; (void)_push;
}

static void work_join_bpf9(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = _t2; _push++;
  (void)_pop; (void)_push;
}

__constant float EqLPF9_hi_taps[28] = { 0.000985579014f, -0.00090042747f, 0.00083308268f, -0.000446254112f, -0.000697458879f, 0.00312795723f, -0.00747310993f, 0.0145014294f, -0.0252554758f, 0.0414165438f, -0.0663521135f, 0.108730123f, -0.200619055f, 0.632683276f, 0.632683276f, -0.200619055f, 0.108730123f, -0.0663521135f, 0.0414165438f, -0.0252554758f, 0.0145014294f, -0.00747310993f, 0.00312795723f, -0.000697458879f, -0.000446254112f, 0.00083308268f, -0.00090042747f, 0.000985579014f };
static void work_EqLPF9_hi(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF9_hi_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

__constant float EqLPF9_lo_taps[28] = { -0.00177476534f, 0.00166377302f, -0.00120883401f, -0.000535262628f, 0.00452510256f, -0.0110821334f, 0.0192877531f, -0.0266519987f, 0.029170019f, -0.0216311993f, -0.00244437259f, 0.0534295231f, -0.163024533f, 0.619355481f, 0.619355481f, -0.163024533f, 0.0534295231f, -0.00244437259f, -0.0216311993f, 0.029170019f, -0.0266519987f, 0.0192877531f, -0.0110821334f, 0.00452510256f, -0.000535262628f, -0.00120883401f, 0.00166377302f, -0.00177476534f };
static void work_EqLPF9_lo(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 28; j++) {
    acc = (acc + (in[(128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF9_lo_taps[j]));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  float _d0 = _t1;
  (void)_pop; (void)_push;
}

static void work_Subtract9(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float a = _t1;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  float b = _t2;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (a - b); _push++;
  (void)_pop; (void)_push;
}

static void work_EqGain9(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = (_t1 * 1.9f); _push++;
  (void)_pop; (void)_push;
}

static void work_EqCombine(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float acc = 0.0f;
  for (int j = 0; j < 10; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
    acc = (acc + _t1);
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  (void)_pop; (void)_push;
}

__kernel void swp_kernel(__global float* buf_4_0__6_0, __global float* buf_6_0__5_0, __global float* buf_4_1__7_0, __global float* buf_7_0__5_1, __global float* buf_5_0__8_0, __global float* buf_8_0__9_0, __global float* buf_2_0__4_0, __global float* buf_9_0__3_0, __global float* buf_10_0__12_0, __global float* buf_12_0__11_0, __global float* buf_10_1__13_0, __global float* buf_13_0__11_1, __global float* buf_11_0__14_0, __global float* buf_14_0__15_0, __global float* buf_2_1__10_0, __global float* buf_15_0__3_1, __global float* buf_16_0__18_0, __global float* buf_18_0__17_0, __global float* buf_16_1__19_0, __global float* buf_19_0__17_1, __global float* buf_17_0__20_0, __global float* buf_20_0__21_0, __global float* buf_2_2__16_0, __global float* buf_21_0__3_2, __global float* buf_22_0__24_0, __global float* buf_24_0__23_0, __global float* buf_22_1__25_0, __global float* buf_25_0__23_1, __global float* buf_23_0__26_0, __global float* buf_26_0__27_0, __global float* buf_2_3__22_0, __global float* buf_27_0__3_3, __global float* buf_28_0__30_0, __global float* buf_30_0__29_0, __global float* buf_28_1__31_0, __global float* buf_31_0__29_1, __global float* buf_29_0__32_0, __global float* buf_32_0__33_0, __global float* buf_2_4__28_0, __global float* buf_33_0__3_4, __global float* buf_34_0__36_0, __global float* buf_36_0__35_0, __global float* buf_34_1__37_0, __global float* buf_37_0__35_1, __global float* buf_35_0__38_0, __global float* buf_38_0__39_0, __global float* buf_2_5__34_0, __global float* buf_39_0__3_5, __global float* buf_40_0__42_0, __global float* buf_42_0__41_0, __global float* buf_40_1__43_0, __global float* buf_43_0__41_1, __global float* buf_41_0__44_0, __global float* buf_44_0__45_0, __global float* buf_2_6__40_0, __global float* buf_45_0__3_6, __global float* buf_46_0__48_0, __global float* buf_48_0__47_0, __global float* buf_46_1__49_0, __global float* buf_49_0__47_1, __global float* buf_47_0__50_0, __global float* buf_50_0__51_0, __global float* buf_2_7__46_0, __global float* buf_51_0__3_7, __global float* buf_52_0__54_0, __global float* buf_54_0__53_0, __global float* buf_52_1__55_0, __global float* buf_55_0__53_1, __global float* buf_53_0__56_0, __global float* buf_56_0__57_0, __global float* buf_2_8__52_0, __global float* buf_57_0__3_8, __global float* buf_58_0__60_0, __global float* buf_60_0__59_0, __global float* buf_58_1__61_0, __global float* buf_61_0__59_1, __global float* buf_59_0__62_0, __global float* buf_62_0__63_0, __global float* buf_2_9__58_0, __global float* buf_63_0__3_9, __global float* buf_0_0__1_0, __global float* buf_1_0__2_0, __global float* buf_3_0__64_0, __global const float* stream_in, __global float* stream_out, int iterations)
{
  int tid = (int)get_local_id(0);
  int sm = (int)get_group_id(0);
  /* staging predicates, one per pipeline stage (depth 7) */
  __local int stage_on[7];
  if (tid == 0) for (int s = 0; s < 7; s++) stage_on[s] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int it = 0; it < iterations + 7; it++) {
    if (tid == 0) { for (int s = 6; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    barrier(CLK_LOCAL_MEM_FENCE);
    switch (sm) {
    case 0: {
      /* (FrontLPF, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_FrontLPF(stream_in + region_0(it - 0), buf_0_0__1_0 + region_0(it - 0), tid);
      /* (EqLPF0_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF0_hi(buf_4_0__6_0 + region_6(it - 3), buf_6_0__5_0 + region_6(it - 3), tid);
      break; }
    case 1: {
      /* (EqLPF1_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF1_hi(buf_10_0__12_0 + region_12(it - 3), buf_12_0__11_0 + region_12(it - 3), tid);
      /* (EqLPF0_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF0_lo(buf_4_1__7_0 + region_7(it - 3), buf_7_0__5_1 + region_7(it - 3), tid);
      break; }
    case 2: {
      /* (EqLPF2_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF2_hi(buf_16_0__18_0 + region_18(it - 3), buf_18_0__17_0 + region_18(it - 3), tid);
      /* (EqLPF1_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF1_lo(buf_10_1__13_0 + region_13(it - 3), buf_13_0__11_1 + region_13(it - 3), tid);
      break; }
    case 3: {
      /* (EqLPF3_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF3_hi(buf_22_0__24_0 + region_24(it - 3), buf_24_0__23_0 + region_24(it - 3), tid);
      /* (EqLPF2_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF2_lo(buf_16_1__19_0 + region_19(it - 3), buf_19_0__17_1 + region_19(it - 3), tid);
      break; }
    case 4: {
      /* (EqLPF4_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF4_hi(buf_28_0__30_0 + region_30(it - 3), buf_30_0__29_0 + region_30(it - 3), tid);
      /* (EqLPF3_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF3_lo(buf_22_1__25_0 + region_25(it - 3), buf_25_0__23_1 + region_25(it - 3), tid);
      break; }
    case 5: {
      /* (EqLPF5_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF5_hi(buf_34_0__36_0 + region_36(it - 3), buf_36_0__35_0 + region_36(it - 3), tid);
      /* (EqLPF4_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF4_lo(buf_28_1__31_0 + region_31(it - 3), buf_31_0__29_1 + region_31(it - 3), tid);
      break; }
    case 6: {
      /* (EqLPF6_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF6_hi(buf_40_0__42_0 + region_42(it - 3), buf_42_0__41_0 + region_42(it - 3), tid);
      /* (EqLPF5_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF5_lo(buf_34_1__37_0 + region_37(it - 3), buf_37_0__35_1 + region_37(it - 3), tid);
      break; }
    case 7: {
      /* (EqLPF7_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF7_hi(buf_46_0__48_0 + region_48(it - 3), buf_48_0__47_0 + region_48(it - 3), tid);
      /* (EqLPF6_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF6_lo(buf_40_1__43_0 + region_43(it - 3), buf_43_0__41_1 + region_43(it - 3), tid);
      break; }
    case 8: {
      /* (EqLPF8_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF8_hi(buf_52_0__54_0 + region_54(it - 3), buf_54_0__53_0 + region_54(it - 3), tid);
      /* (EqLPF7_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF7_lo(buf_46_1__49_0 + region_49(it - 3), buf_49_0__47_1 + region_49(it - 3), tid);
      break; }
    case 9: {
      /* (EqLPF9_hi, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF9_hi(buf_58_0__60_0 + region_60(it - 3), buf_60_0__59_0 + region_60(it - 3), tid);
      /* (EqLPF8_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF8_lo(buf_52_1__55_0 + region_55(it - 3), buf_55_0__53_1 + region_55(it - 3), tid);
      break; }
    case 10: {
      /* (FMDemod, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_FMDemod(buf_0_0__1_0 + region_1(it - 1), buf_1_0__2_0 + region_1(it - 1), tid);
      /* (EqLPF9_lo, k=0) o=1842 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_EqLPF9_lo(buf_58_1__61_0 + region_61(it - 3), buf_61_0__59_1 + region_61(it - 3), tid);
      /* (join_bpf5, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf5(buf_36_0__35_0 + region_35(it - 4), buf_35_0__38_0 + region_35(it - 4), tid);
      /* (join_bpf4, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf4(buf_30_0__29_0 + region_29(it - 4), buf_29_0__32_0 + region_29(it - 4), tid);
      /* (join_bpf3, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf3(buf_24_0__23_0 + region_23(it - 4), buf_23_0__26_0 + region_23(it - 4), tid);
      /* (join_bpf2, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf2(buf_18_0__17_0 + region_17(it - 4), buf_17_0__20_0 + region_17(it - 4), tid);
      /* (join_bpf1, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf1(buf_12_0__11_0 + region_11(it - 4), buf_11_0__14_0 + region_11(it - 4), tid);
      /* (join_bpf0, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf0(buf_6_0__5_0 + region_5(it - 4), buf_5_0__8_0 + region_5(it - 4), tid);
      /* (split_equalizer, k=0) o=1842 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_equalizer(buf_1_0__2_0 + region_2(it - 1), buf_2_0__4_0 + region_2(it - 1), tid);
      /* (join_equalizer, k=0) o=2596 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_join_equalizer(buf_9_0__3_0 + region_3(it - 6), buf_3_0__64_0 + region_3(it - 6), tid);
      /* (EqCombine, k=0) o=5718 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_EqCombine(buf_3_0__64_0 + region_64(it - 6), stream_out + region_64(it - 6), tid);
      break; }
    case 11: {
      /* (join_bpf9, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf9(buf_60_0__59_0 + region_59(it - 4), buf_59_0__62_0 + region_59(it - 4), tid);
      /* (split_bpf9, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf9(buf_2_9__58_0 + region_58(it - 2), buf_58_0__60_0 + region_58(it - 2), tid);
      /* (join_bpf8, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf8(buf_54_0__53_0 + region_53(it - 4), buf_53_0__56_0 + region_53(it - 4), tid);
      /* (split_bpf8, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf8(buf_2_8__52_0 + region_52(it - 2), buf_52_0__54_0 + region_52(it - 2), tid);
      /* (join_bpf7, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf7(buf_48_0__47_0 + region_47(it - 4), buf_47_0__50_0 + region_47(it - 4), tid);
      /* (split_bpf7, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf7(buf_2_7__46_0 + region_46(it - 2), buf_46_0__48_0 + region_46(it - 2), tid);
      /* (join_bpf6, k=0) o=1842 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_bpf6(buf_42_0__41_0 + region_41(it - 4), buf_41_0__44_0 + region_41(it - 4), tid);
      /* (split_bpf6, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf6(buf_2_6__40_0 + region_40(it - 2), buf_40_0__42_0 + region_40(it - 2), tid);
      /* (Subtract5, k=0) o=1842 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_Subtract5(buf_35_0__38_0 + region_38(it - 5), buf_38_0__39_0 + region_38(it - 5), tid);
      /* (split_bpf5, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf5(buf_2_5__34_0 + region_34(it - 2), buf_34_0__36_0 + region_34(it - 2), tid);
      /* (Subtract4, k=0) o=1842 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_Subtract4(buf_29_0__32_0 + region_32(it - 5), buf_32_0__33_0 + region_32(it - 5), tid);
      /* (split_bpf4, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf4(buf_2_4__28_0 + region_28(it - 2), buf_28_0__30_0 + region_28(it - 2), tid);
      /* (Subtract3, k=0) o=1842 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_Subtract3(buf_23_0__26_0 + region_26(it - 5), buf_26_0__27_0 + region_26(it - 5), tid);
      /* (split_bpf3, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf3(buf_2_3__22_0 + region_22(it - 2), buf_22_0__24_0 + region_22(it - 2), tid);
      /* (Subtract2, k=0) o=1842 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_Subtract2(buf_17_0__20_0 + region_20(it - 5), buf_20_0__21_0 + region_20(it - 5), tid);
      /* (split_bpf2, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf2(buf_2_2__16_0 + region_16(it - 2), buf_16_0__18_0 + region_16(it - 2), tid);
      /* (Subtract1, k=0) o=1842 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_Subtract1(buf_11_0__14_0 + region_14(it - 5), buf_14_0__15_0 + region_14(it - 5), tid);
      /* (split_bpf1, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf1(buf_2_1__10_0 + region_10(it - 2), buf_10_0__12_0 + region_10(it - 2), tid);
      /* (Subtract0, k=0) o=1842 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_Subtract0(buf_5_0__8_0 + region_8(it - 5), buf_8_0__9_0 + region_8(it - 5), tid);
      /* (split_bpf0, k=0) o=1842 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_split_bpf0(buf_2_0__4_0 + region_4(it - 2), buf_4_0__6_0 + region_4(it - 2), tid);
      /* (EqGain5, k=0) o=2596 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_EqGain5(buf_38_0__39_0 + region_39(it - 5), buf_39_0__3_5 + region_39(it - 5), tid);
      /* (EqGain4, k=0) o=2596 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_EqGain4(buf_32_0__33_0 + region_33(it - 5), buf_33_0__3_4 + region_33(it - 5), tid);
      /* (EqGain3, k=0) o=2596 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_EqGain3(buf_26_0__27_0 + region_27(it - 5), buf_27_0__3_3 + region_27(it - 5), tid);
      /* (EqGain2, k=0) o=2596 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_EqGain2(buf_20_0__21_0 + region_21(it - 5), buf_21_0__3_2 + region_21(it - 5), tid);
      /* (EqGain1, k=0) o=2596 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_EqGain1(buf_14_0__15_0 + region_15(it - 5), buf_15_0__3_1 + region_15(it - 5), tid);
      /* (EqGain0, k=0) o=2596 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_EqGain0(buf_8_0__9_0 + region_9(it - 5), buf_9_0__3_0 + region_9(it - 5), tid);
      /* (Subtract9, k=0) o=2916 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Subtract9(buf_59_0__62_0 + region_62(it - 4), buf_62_0__63_0 + region_62(it - 4), tid);
      /* (Subtract8, k=0) o=2916 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Subtract8(buf_53_0__56_0 + region_56(it - 4), buf_56_0__57_0 + region_56(it - 4), tid);
      /* (Subtract7, k=0) o=2916 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Subtract7(buf_47_0__50_0 + region_50(it - 4), buf_50_0__51_0 + region_50(it - 4), tid);
      /* (Subtract6, k=0) o=2916 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_Subtract6(buf_41_0__44_0 + region_44(it - 4), buf_44_0__45_0 + region_44(it - 4), tid);
      /* (EqGain9, k=0) o=3670 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_EqGain9(buf_62_0__63_0 + region_63(it - 4), buf_63_0__3_9 + region_63(it - 4), tid);
      /* (EqGain8, k=0) o=3670 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_EqGain8(buf_56_0__57_0 + region_57(it - 4), buf_57_0__3_8 + region_57(it - 4), tid);
      /* (EqGain7, k=0) o=3670 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_EqGain7(buf_50_0__51_0 + region_51(it - 4), buf_51_0__3_7 + region_51(it - 4), tid);
      /* (EqGain6, k=0) o=3670 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_EqGain6(buf_44_0__45_0 + region_45(it - 4), buf_45_0__3_6 + region_45(it - 4), tid);
      break; }
    }
    /* II boundary */
  }
}

/* host launch (OpenCL):
 *   clEnqueueNDRangeKernel: global = 16 x 512, local = 512
 *   clCreateBuffer buf_4_0__6_0: 16492 bytes
 *   clCreateBuffer buf_6_0__5_0: 16384 bytes
 *   clCreateBuffer buf_4_1__7_0: 16492 bytes
 *   clCreateBuffer buf_7_0__5_1: 16384 bytes
 *   clCreateBuffer buf_5_0__8_0: 32768 bytes
 *   clCreateBuffer buf_8_0__9_0: 16384 bytes
 *   clCreateBuffer buf_2_0__4_0: 16384 bytes
 *   clCreateBuffer buf_9_0__3_0: 16384 bytes
 *   clCreateBuffer buf_10_0__12_0: 16492 bytes
 *   clCreateBuffer buf_12_0__11_0: 16384 bytes
 *   clCreateBuffer buf_10_1__13_0: 16492 bytes
 *   clCreateBuffer buf_13_0__11_1: 16384 bytes
 *   clCreateBuffer buf_11_0__14_0: 32768 bytes
 *   clCreateBuffer buf_14_0__15_0: 16384 bytes
 *   clCreateBuffer buf_2_1__10_0: 16384 bytes
 *   clCreateBuffer buf_15_0__3_1: 16384 bytes
 *   clCreateBuffer buf_16_0__18_0: 16492 bytes
 *   clCreateBuffer buf_18_0__17_0: 16384 bytes
 *   clCreateBuffer buf_16_1__19_0: 16492 bytes
 *   clCreateBuffer buf_19_0__17_1: 16384 bytes
 *   clCreateBuffer buf_17_0__20_0: 32768 bytes
 *   clCreateBuffer buf_20_0__21_0: 16384 bytes
 *   clCreateBuffer buf_2_2__16_0: 16384 bytes
 *   clCreateBuffer buf_21_0__3_2: 16384 bytes
 *   clCreateBuffer buf_22_0__24_0: 16492 bytes
 *   clCreateBuffer buf_24_0__23_0: 16384 bytes
 *   clCreateBuffer buf_22_1__25_0: 16492 bytes
 *   clCreateBuffer buf_25_0__23_1: 16384 bytes
 *   clCreateBuffer buf_23_0__26_0: 32768 bytes
 *   clCreateBuffer buf_26_0__27_0: 16384 bytes
 *   clCreateBuffer buf_2_3__22_0: 16384 bytes
 *   clCreateBuffer buf_27_0__3_3: 16384 bytes
 *   clCreateBuffer buf_28_0__30_0: 16492 bytes
 *   clCreateBuffer buf_30_0__29_0: 16384 bytes
 *   clCreateBuffer buf_28_1__31_0: 16492 bytes
 *   clCreateBuffer buf_31_0__29_1: 16384 bytes
 *   clCreateBuffer buf_29_0__32_0: 32768 bytes
 *   clCreateBuffer buf_32_0__33_0: 16384 bytes
 *   clCreateBuffer buf_2_4__28_0: 16384 bytes
 *   clCreateBuffer buf_33_0__3_4: 16384 bytes
 *   clCreateBuffer buf_34_0__36_0: 16492 bytes
 *   clCreateBuffer buf_36_0__35_0: 16384 bytes
 *   clCreateBuffer buf_34_1__37_0: 16492 bytes
 *   clCreateBuffer buf_37_0__35_1: 16384 bytes
 *   clCreateBuffer buf_35_0__38_0: 32768 bytes
 *   clCreateBuffer buf_38_0__39_0: 16384 bytes
 *   clCreateBuffer buf_2_5__34_0: 16384 bytes
 *   clCreateBuffer buf_39_0__3_5: 16384 bytes
 *   clCreateBuffer buf_40_0__42_0: 16492 bytes
 *   clCreateBuffer buf_42_0__41_0: 16384 bytes
 *   clCreateBuffer buf_40_1__43_0: 16492 bytes
 *   clCreateBuffer buf_43_0__41_1: 16384 bytes
 *   clCreateBuffer buf_41_0__44_0: 32768 bytes
 *   clCreateBuffer buf_44_0__45_0: 16384 bytes
 *   clCreateBuffer buf_2_6__40_0: 16384 bytes
 *   clCreateBuffer buf_45_0__3_6: 16384 bytes
 *   clCreateBuffer buf_46_0__48_0: 16492 bytes
 *   clCreateBuffer buf_48_0__47_0: 16384 bytes
 *   clCreateBuffer buf_46_1__49_0: 16492 bytes
 *   clCreateBuffer buf_49_0__47_1: 16384 bytes
 *   clCreateBuffer buf_47_0__50_0: 32768 bytes
 *   clCreateBuffer buf_50_0__51_0: 16384 bytes
 *   clCreateBuffer buf_2_7__46_0: 16384 bytes
 *   clCreateBuffer buf_51_0__3_7: 16384 bytes
 *   clCreateBuffer buf_52_0__54_0: 16492 bytes
 *   clCreateBuffer buf_54_0__53_0: 16384 bytes
 *   clCreateBuffer buf_52_1__55_0: 16492 bytes
 *   clCreateBuffer buf_55_0__53_1: 16384 bytes
 *   clCreateBuffer buf_53_0__56_0: 32768 bytes
 *   clCreateBuffer buf_56_0__57_0: 16384 bytes
 *   clCreateBuffer buf_2_8__52_0: 16384 bytes
 *   clCreateBuffer buf_57_0__3_8: 16384 bytes
 *   clCreateBuffer buf_58_0__60_0: 16492 bytes
 *   clCreateBuffer buf_60_0__59_0: 16384 bytes
 *   clCreateBuffer buf_58_1__61_0: 16492 bytes
 *   clCreateBuffer buf_61_0__59_1: 16384 bytes
 *   clCreateBuffer buf_59_0__62_0: 32768 bytes
 *   clCreateBuffer buf_62_0__63_0: 16384 bytes
 *   clCreateBuffer buf_2_9__58_0: 16384 bytes
 *   clCreateBuffer buf_63_0__3_9: 16384 bytes
 *   clCreateBuffer buf_0_0__1_0: 16388 bytes
 *   clCreateBuffer buf_1_0__2_0: 16384 bytes
 *   clCreateBuffer buf_3_0__64_0: 163840 bytes
 *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. (9); iterations = 1024
 */
