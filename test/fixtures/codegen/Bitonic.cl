/* streamit_gpu artifact (opencl)
 * quality: heuristic (completed)
 * II: 9011 (lower bound 9011, binding no_wrap)
 * schedule signature: 247dd07badbc6fc1ccf635d65da9d027
 * program-scope __global state requires OpenCL C 2.0
 */

static inline int region_0(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_1(int it) { return ((it % 17) + 17) % 17 * 4096; }
static inline int region_2(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_3(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_4(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_5(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_6(int it) { return ((it % 17) + 17) % 17 * 2048; }
static inline int region_7(int it) { return ((it % 17) + 17) % 17 * 4096; }
static inline int region_8(int it) { return ((it % 17) + 17) % 17 * 2048; }
static inline int region_9(int it) { return ((it % 17) + 17) % 17 * 2048; }
static inline int region_10(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_11(int it) { return ((it % 17) + 17) % 17 * 4096; }
static inline int region_12(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_13(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_14(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_15(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_16(int it) { return ((it % 17) + 17) % 17 * 4096; }
static inline int region_17(int it) { return ((it % 17) + 17) % 17 * 2048; }
static inline int region_18(int it) { return ((it % 17) + 17) % 17 * 4096; }
static inline int region_19(int it) { return ((it % 17) + 17) % 17 * 2048; }
static inline int region_20(int it) { return ((it % 17) + 17) % 17 * 2048; }
static inline int region_21(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_22(int it) { return ((it % 17) + 17) % 17 * 0; }
static inline int region_23(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_24(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_25(int it) { return ((it % 17) + 17) % 17 * 1024; }
static inline int region_26(int it) { return ((it % 17) + 17) % 17 * 1024; }

static void work_split_stage_p1_d1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_join_stage_p1_d1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_CEp1_b0_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp1_b1_d1_desc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp1_b2_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp1_b3_d1_desc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_split_stage_p2_d2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_join_stage_p2_d2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_CEp2_b0_d2_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[4] = {0};
  for (int j = 0; j < 4; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 2; j++) {
    float a = w[j];
    float b = w[(j + 2)];
    w[j] = min(a, b);
    w[(j + 2)] = max(a, b);
  }
  for (int j = 0; j < 4; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp2_b1_d2_desc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[4] = {0};
  for (int j = 0; j < 4; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 2; j++) {
    float a = w[j];
    float b = w[(j + 2)];
    w[j] = max(a, b);
    w[(j + 2)] = min(a, b);
  }
  for (int j = 0; j < 4; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_split_stage_p2_d1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_join_stage_p2_d1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_CEp2_b0_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp2_b1_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp2_b2_d1_desc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp2_b3_d1_desc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = max(a, b);
    w[(j + 1)] = min(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp3_d4_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[8] = {0};
  for (int j = 0; j < 8; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 4; j++) {
    float a = w[j];
    float b = w[(j + 4)];
    w[j] = min(a, b);
    w[(j + 4)] = max(a, b);
  }
  for (int j = 0; j < 8; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_split_stage_p3_d2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_join_stage_p3_d2(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_CEp3_b0_d2_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[4] = {0};
  for (int j = 0; j < 4; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 2; j++) {
    float a = w[j];
    float b = w[(j + 2)];
    w[j] = min(a, b);
    w[(j + 2)] = max(a, b);
  }
  for (int j = 0; j < 4; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp3_b1_d2_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[4] = {0};
  for (int j = 0; j < 4; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 4 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 2; j++) {
    float a = w[j];
    float b = w[(j + 2)];
    w[j] = min(a, b);
    w[(j + 2)] = max(a, b);
  }
  for (int j = 0; j < 4; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 4 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_split_stage_p3_d1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_join_stage_p3_d1(__global const float* in, __global float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_CEp3_b0_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp3_b1_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp3_b2_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_CEp3_b3_d1_asc(__global const int* in, __global int* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  int w[2] = {0};
  for (int j = 0; j < 2; j++) {
    int _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
    w[j] = _t1;
  }
  for (int j = 0; j < 1; j++) {
    float a = w[j];
    float b = w[(j + 1)];
    w[j] = min(a, b);
    w[(j + 1)] = max(a, b);
  }
  for (int j = 0; j < 2; j++) {
    out[(128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = w[j]; _push++;
  }
  (void)_pop; (void)_push;
}

__kernel void swp_kernel(__global float* buf_0_0__2_0, __global float* buf_2_0__1_0, __global float* buf_0_1__3_0, __global float* buf_3_0__1_1, __global float* buf_0_2__4_0, __global float* buf_4_0__1_2, __global float* buf_0_3__5_0, __global float* buf_5_0__1_3, __global float* buf_6_0__8_0, __global float* buf_8_0__7_0, __global float* buf_6_1__9_0, __global float* buf_9_0__7_1, __global float* buf_10_0__12_0, __global float* buf_12_0__11_0, __global float* buf_10_1__13_0, __global float* buf_13_0__11_1, __global float* buf_10_2__14_0, __global float* buf_14_0__11_2, __global float* buf_10_3__15_0, __global float* buf_15_0__11_3, __global float* buf_17_0__19_0, __global float* buf_19_0__18_0, __global float* buf_17_1__20_0, __global float* buf_20_0__18_1, __global float* buf_21_0__23_0, __global float* buf_23_0__22_0, __global float* buf_21_1__24_0, __global float* buf_24_0__22_1, __global float* buf_21_2__25_0, __global float* buf_25_0__22_2, __global float* buf_21_3__26_0, __global float* buf_26_0__22_3, __global float* buf_1_0__6_0, __global float* buf_7_0__10_0, __global float* buf_11_0__16_0, __global float* buf_16_0__17_0, __global float* buf_18_0__21_0, __global const float* stream_in, __global float* stream_out, int iterations)
{
  int tid = (int)get_local_id(0);
  int sm = (int)get_group_id(0);
  /* staging predicates, one per pipeline stage (depth 16) */
  __local int stage_on[16];
  if (tid == 0) for (int s = 0; s < 16; s++) stage_on[s] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int it = 0; it < iterations + 16; it++) {
    if (tid == 0) { for (int s = 15; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    barrier(CLK_LOCAL_MEM_FENCE);
    switch (sm) {
    case 0: {
      /* (CEp3_d4_asc, k=0) o=0 f=9 threads=512 */
      if (stage_on[9] && tid < 512)
        work_CEp3_d4_asc(buf_11_0__16_0 + region_16(it - 9), buf_16_0__17_0 + region_16(it - 9), tid);
      break; }
    case 1: {
      /* (CEp2_b0_d2_asc, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_CEp2_b0_d2_asc(buf_6_0__8_0 + region_8(it - 4), buf_8_0__7_0 + region_8(it - 4), tid);
      /* (split_stage_p1_d1, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_stage_p1_d1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      break; }
    case 2: {
      /* (CEp2_b1_d2_desc, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_CEp2_b1_d2_desc(buf_6_1__9_0 + region_9(it - 4), buf_9_0__7_1 + region_9(it - 4), tid);
      /* (join_stage_p1_d1, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_stage_p1_d1(buf_2_0__1_0 + region_1(it - 2), buf_1_0__6_0 + region_1(it - 2), tid);
      break; }
    case 3: {
      /* (CEp3_b0_d2_asc, k=0) o=0 f=11 threads=512 */
      if (stage_on[11] && tid < 512)
        work_CEp3_b0_d2_asc(buf_17_0__19_0 + region_19(it - 11), buf_19_0__18_0 + region_19(it - 11), tid);
      /* (CEp1_b0_d1_asc, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_CEp1_b0_d1_asc(buf_0_0__2_0 + region_2(it - 1), buf_2_0__1_0 + region_2(it - 1), tid);
      break; }
    case 4: {
      /* (CEp3_b1_d2_asc, k=0) o=0 f=11 threads=512 */
      if (stage_on[11] && tid < 512)
        work_CEp3_b1_d2_asc(buf_17_1__20_0 + region_20(it - 11), buf_20_0__18_1 + region_20(it - 11), tid);
      /* (CEp1_b1_d1_desc, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_CEp1_b1_d1_desc(buf_0_1__3_0 + region_3(it - 1), buf_3_0__1_1 + region_3(it - 1), tid);
      break; }
    case 5: {
      /* (split_stage_p2_d2, k=0) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_stage_p2_d2(buf_1_0__6_0 + region_6(it - 3), buf_6_0__8_0 + region_6(it - 3), tid);
      /* (CEp1_b3_d1_desc, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_CEp1_b3_d1_desc(buf_0_3__5_0 + region_5(it - 1), buf_5_0__1_3 + region_5(it - 1), tid);
      /* (CEp1_b2_d1_asc, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_CEp1_b2_d1_asc(buf_0_2__4_0 + region_4(it - 1), buf_4_0__1_2 + region_4(it - 1), tid);
      break; }
    case 6: {
      /* (join_stage_p2_d2, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_stage_p2_d2(buf_8_0__7_0 + region_7(it - 5), buf_7_0__10_0 + region_7(it - 5), tid);
      /* (join_stage_p2_d1, k=0) o=2610 f=7 threads=512 */
      if (stage_on[7] && tid < 512)
        work_join_stage_p2_d1(buf_12_0__11_0 + region_11(it - 7), buf_11_0__16_0 + region_11(it - 7), tid);
      /* (split_stage_p2_d1, k=0) o=2610 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_split_stage_p2_d1(buf_7_0__10_0 + region_10(it - 5), buf_10_0__12_0 + region_10(it - 5), tid);
      break; }
    case 7: {
      /* (CEp2_b2_d1_desc, k=0) o=2610 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_CEp2_b2_d1_desc(buf_10_2__14_0 + region_14(it - 6), buf_14_0__11_2 + region_14(it - 6), tid);
      /* (CEp2_b1_d1_asc, k=0) o=2610 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_CEp2_b1_d1_asc(buf_10_1__13_0 + region_13(it - 6), buf_13_0__11_1 + region_13(it - 6), tid);
      /* (CEp2_b0_d1_asc, k=0) o=2610 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_CEp2_b0_d1_asc(buf_10_0__12_0 + region_12(it - 6), buf_12_0__11_0 + region_12(it - 6), tid);
      break; }
    case 8: {
      /* (join_stage_p3_d2, k=0) o=0 f=12 threads=512 */
      if (stage_on[12] && tid < 512)
        work_join_stage_p3_d2(buf_19_0__18_0 + region_18(it - 12), buf_18_0__21_0 + region_18(it - 12), tid);
      /* (split_stage_p3_d2, k=0) o=0 f=10 threads=512 */
      if (stage_on[10] && tid < 512)
        work_split_stage_p3_d2(buf_16_0__17_0 + region_17(it - 10), buf_17_0__19_0 + region_17(it - 10), tid);
      /* (CEp2_b3_d1_desc, k=0) o=2610 f=6 threads=512 */
      if (stage_on[6] && tid < 512)
        work_CEp2_b3_d1_desc(buf_10_3__15_0 + region_15(it - 6), buf_15_0__11_3 + region_15(it - 6), tid);
      break; }
    case 9: {
      /* (join_stage_p3_d1, k=0) o=0 f=15 threads=512 */
      if (stage_on[15] && tid < 512)
        work_join_stage_p3_d1(buf_23_0__22_0 + region_22(it - 15), stream_out + region_22(it - 15), tid);
      /* (split_stage_p3_d1, k=0) o=0 f=13 threads=512 */
      if (stage_on[13] && tid < 512)
        work_split_stage_p3_d1(buf_18_0__21_0 + region_21(it - 13), buf_21_0__23_0 + region_21(it - 13), tid);
      /* (CEp3_b0_d1_asc, k=0) o=2610 f=13 threads=512 */
      if (stage_on[13] && tid < 512)
        work_CEp3_b0_d1_asc(buf_21_0__23_0 + region_23(it - 13), buf_23_0__22_0 + region_23(it - 13), tid);
      break; }
    case 10: {
      /* (CEp3_b3_d1_asc, k=0) o=0 f=14 threads=512 */
      if (stage_on[14] && tid < 512)
        work_CEp3_b3_d1_asc(buf_21_3__26_0 + region_26(it - 14), buf_26_0__22_3 + region_26(it - 14), tid);
      /* (CEp3_b2_d1_asc, k=0) o=0 f=14 threads=512 */
      if (stage_on[14] && tid < 512)
        work_CEp3_b2_d1_asc(buf_21_2__25_0 + region_25(it - 14), buf_25_0__22_2 + region_25(it - 14), tid);
      /* (CEp3_b1_d1_asc, k=0) o=0 f=14 threads=512 */
      if (stage_on[14] && tid < 512)
        work_CEp3_b1_d1_asc(buf_21_1__24_0 + region_24(it - 14), buf_24_0__22_1 + region_24(it - 14), tid);
      break; }
    }
    /* II boundary */
  }
}

/* host launch (OpenCL):
 *   clEnqueueNDRangeKernel: global = 16 x 512, local = 512
 *   clCreateBuffer buf_0_0__2_0: 69632 bytes
 *   clCreateBuffer buf_2_0__1_0: 69632 bytes
 *   clCreateBuffer buf_0_1__3_0: 69632 bytes
 *   clCreateBuffer buf_3_0__1_1: 69632 bytes
 *   clCreateBuffer buf_0_2__4_0: 69632 bytes
 *   clCreateBuffer buf_4_0__1_2: 69632 bytes
 *   clCreateBuffer buf_0_3__5_0: 69632 bytes
 *   clCreateBuffer buf_5_0__1_3: 69632 bytes
 *   clCreateBuffer buf_6_0__8_0: 139264 bytes
 *   clCreateBuffer buf_8_0__7_0: 139264 bytes
 *   clCreateBuffer buf_6_1__9_0: 139264 bytes
 *   clCreateBuffer buf_9_0__7_1: 139264 bytes
 *   clCreateBuffer buf_10_0__12_0: 69632 bytes
 *   clCreateBuffer buf_12_0__11_0: 69632 bytes
 *   clCreateBuffer buf_10_1__13_0: 69632 bytes
 *   clCreateBuffer buf_13_0__11_1: 69632 bytes
 *   clCreateBuffer buf_10_2__14_0: 69632 bytes
 *   clCreateBuffer buf_14_0__11_2: 69632 bytes
 *   clCreateBuffer buf_10_3__15_0: 69632 bytes
 *   clCreateBuffer buf_15_0__11_3: 69632 bytes
 *   clCreateBuffer buf_17_0__19_0: 139264 bytes
 *   clCreateBuffer buf_19_0__18_0: 139264 bytes
 *   clCreateBuffer buf_17_1__20_0: 139264 bytes
 *   clCreateBuffer buf_20_0__18_1: 139264 bytes
 *   clCreateBuffer buf_21_0__23_0: 69632 bytes
 *   clCreateBuffer buf_23_0__22_0: 69632 bytes
 *   clCreateBuffer buf_21_1__24_0: 69632 bytes
 *   clCreateBuffer buf_24_0__22_1: 69632 bytes
 *   clCreateBuffer buf_21_2__25_0: 69632 bytes
 *   clCreateBuffer buf_25_0__22_2: 69632 bytes
 *   clCreateBuffer buf_21_3__26_0: 69632 bytes
 *   clCreateBuffer buf_26_0__22_3: 69632 bytes
 *   clCreateBuffer buf_1_0__6_0: 278528 bytes
 *   clCreateBuffer buf_7_0__10_0: 278528 bytes
 *   clCreateBuffer buf_11_0__16_0: 278528 bytes
 *   clCreateBuffer buf_16_0__17_0: 278528 bytes
 *   clCreateBuffer buf_18_0__21_0: 278528 bytes
 *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. (9); iterations = 1024
 */
