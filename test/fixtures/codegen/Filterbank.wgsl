// streamit_gpu artifact (wgsl)
// quality: refined (completed)
// II: 142126 (lower bound 141771, binding res_mii)
// schedule signature: 58bd7959f63b54da3099eb7a355b09aa
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_2_0__3_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_3_0__4_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_4_0__5_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_5_0__6_0: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_0_0__2_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_6_0__1_0: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_7_0__8_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_8_0__9_0: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_9_0__10_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_10_0__11_0: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_0_1__7_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_11_0__1_1: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_12_0__13_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_13_0__14_0: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_14_0__15_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_15_0__16_0: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_0_2__12_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_16_0__1_2: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_17_0__18_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_18_0__19_0: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_19_0__20_0: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_20_0__21_0: array<f32>;
@group(0) @binding(22) var<storage, read_write> buf_0_3__17_0: array<f32>;
@group(0) @binding(23) var<storage, read_write> buf_21_0__1_3: array<f32>;
@group(0) @binding(24) var<storage, read_write> buf_22_0__23_0: array<f32>;
@group(0) @binding(25) var<storage, read_write> buf_23_0__24_0: array<f32>;
@group(0) @binding(26) var<storage, read_write> buf_24_0__25_0: array<f32>;
@group(0) @binding(27) var<storage, read_write> buf_25_0__26_0: array<f32>;
@group(0) @binding(28) var<storage, read_write> buf_0_4__22_0: array<f32>;
@group(0) @binding(29) var<storage, read_write> buf_26_0__1_4: array<f32>;
@group(0) @binding(30) var<storage, read_write> buf_27_0__28_0: array<f32>;
@group(0) @binding(31) var<storage, read_write> buf_28_0__29_0: array<f32>;
@group(0) @binding(32) var<storage, read_write> buf_29_0__30_0: array<f32>;
@group(0) @binding(33) var<storage, read_write> buf_30_0__31_0: array<f32>;
@group(0) @binding(34) var<storage, read_write> buf_0_5__27_0: array<f32>;
@group(0) @binding(35) var<storage, read_write> buf_31_0__1_5: array<f32>;
@group(0) @binding(36) var<storage, read_write> buf_32_0__33_0: array<f32>;
@group(0) @binding(37) var<storage, read_write> buf_33_0__34_0: array<f32>;
@group(0) @binding(38) var<storage, read_write> buf_34_0__35_0: array<f32>;
@group(0) @binding(39) var<storage, read_write> buf_35_0__36_0: array<f32>;
@group(0) @binding(40) var<storage, read_write> buf_0_6__32_0: array<f32>;
@group(0) @binding(41) var<storage, read_write> buf_36_0__1_6: array<f32>;
@group(0) @binding(42) var<storage, read_write> buf_37_0__38_0: array<f32>;
@group(0) @binding(43) var<storage, read_write> buf_38_0__39_0: array<f32>;
@group(0) @binding(44) var<storage, read_write> buf_39_0__40_0: array<f32>;
@group(0) @binding(45) var<storage, read_write> buf_40_0__41_0: array<f32>;
@group(0) @binding(46) var<storage, read_write> buf_0_7__37_0: array<f32>;
@group(0) @binding(47) var<storage, read_write> buf_41_0__1_7: array<f32>;
@group(0) @binding(48) var<storage, read_write> buf_1_0__42_0: array<f32>;
@group(0) @binding(49) var<storage, read> stream_in: array<f32>;
@group(0) @binding(50) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(51) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 7>;

fn region_0(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_1(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 32768; }
fn region_2(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_3(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_4(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_5(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_6(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_7(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_8(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_9(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_10(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_11(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_12(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_13(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_14(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_15(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_16(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_17(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_18(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_19(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_20(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_21(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_22(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_23(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_24(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_25(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_26(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_27(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_28(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_29(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_30(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_31(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_32(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_33(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_34(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_35(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_36(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_37(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_38(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_39(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_40(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_41(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 4096; }
fn region_42(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 0; }

fn work_split_bank(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bank(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_6_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis0_taps: array<f32, 28> = array<f32, 28>(-0.00234461681f, -0.00320814694f, -0.00476149529f, -0.00657152888f, -0.00755257784f, -0.00614969504f, -0.000749004059f, 0.0097911405f, 0.0256479474f, 0.0457454255f, 0.0677848349f, 0.0886207813f, 0.104906087f, 0.113843569f, 0.113843569f, 0.104906087f, 0.0886207813f, 0.0677848349f, 0.0457454255f, 0.0256479474f, 0.0097911405f, -0.000749004059f, -0.00614969504f, -0.00755257784f, -0.00657152888f, -0.00476149529f, -0.00320814694f, -0.00234461681f);

fn work_Analysis0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_0__2_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis0_taps[j]));
  }
  buf_2_0__3_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_3_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_2_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_3_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_4_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis0_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_4_0__5_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis0_taps[j]));
  }
  buf_5_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_4_0__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_5_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_6_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis1_taps: array<f32, 28> = array<f32, 28>(-0.000174311059f, 0.001407292f, 0.00486573025f, 0.00998395108f, 0.0131515074f, 0.00774164696f, -0.0112828683f, -0.0410606607f, -0.0682613149f, -0.0742631754f, -0.0465440444f, 0.0108755976f, 0.0759894583f, 0.119054028f, 0.119054028f, 0.0759894583f, 0.0108755976f, -0.0465440444f, -0.0742631754f, -0.0682613149f, -0.0410606607f, -0.0112828683f, 0.00774164696f, 0.0131515074f, 0.00998395108f, 0.00486573025f, 0.001407292f, -0.000174311059f);

fn work_Analysis1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_1__7_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis1_taps[j]));
  }
  buf_7_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_1__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_8_0__9_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_7_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_8_0__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_9_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis1_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_9_0__10_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis1_taps[j]));
  }
  buf_10_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_9_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_10_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_11_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis2_taps: array<f32, 28> = array<f32, 28>(0.0013747011f, 0.00285681757f, 0.00160155673f, -0.00636439783f, -0.0169314389f, -0.0125717525f, 0.018322384f, 0.0528620826f, 0.0435140518f, -0.0244437489f, -0.0944848999f, -0.0857702088f, 0.0117407759f, 0.10972082f, 0.10972082f, 0.0117407759f, -0.0857702088f, -0.0944848999f, -0.0244437489f, 0.0435140518f, 0.0528620826f, 0.018322384f, -0.0125717525f, -0.0169314389f, -0.00636439783f, 0.00160155673f, 0.00285681757f, 0.0013747011f);

fn work_Analysis2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_2__12_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis2_taps[j]));
  }
  buf_12_0__13_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_2__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_13_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_12_0__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_13_0__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis2_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_14_0__15_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis2_taps[j]));
  }
  buf_15_0__16_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_14_0__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_15_0__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_16_0__1_2[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis3_taps: array<f32, 28> = array<f32, 28>(0.00170179708f, -0.000292617082f, -0.00549062669f, -0.00291221111f, 0.0150044465f, 0.0169187326f, -0.0246577806f, -0.0468457699f, 0.0199110911f, 0.0838006531f, 0.00967786533f, -0.106178347f, -0.0564652615f, 0.0961711032f, 0.0961711032f, -0.0564652615f, -0.106178347f, 0.00967786533f, 0.0838006531f, 0.0199110911f, -0.0468457699f, -0.0246577806f, 0.0169187326f, 0.0150044465f, -0.00291221111f, -0.00549062669f, -0.000292617082f, 0.00170179708f);

fn work_Analysis3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_3__17_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis3_taps[j]));
  }
  buf_17_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_3__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_18_0__19_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_17_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_18_0__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_19_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis3_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_19_0__20_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis3_taps[j]));
  }
  buf_20_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_19_0__20_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_20_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_21_0__1_3[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis4_taps: array<f32, 28> = array<f32, 28>(0.0005162345f, -0.00297099109f, 0.000540779528f, 0.00960027344f, -0.00802004375f, -0.0206155354f, 0.0300455926f, 0.0250395857f, -0.0656380709f, -0.00825364393f, 0.0982610156f, -0.0322088495f, -0.105639074f, 0.0789255847f, 0.0789255847f, -0.105639074f, -0.0322088495f, 0.0982610156f, -0.00825364393f, -0.0656380709f, 0.0250395857f, 0.0300455926f, -0.0206155354f, -0.00802004375f, 0.00960027344f, 0.000540779528f, -0.00297099109f, 0.0005162345f);

fn work_Analysis4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_4__22_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis4_taps[j]));
  }
  buf_22_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_4__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_23_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_22_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_23_0__24_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_24_0__25_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis4_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_24_0__25_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis4_taps[j]));
  }
  buf_25_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_24_0__25_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_25_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_26_0__1_4[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis5_taps: array<f32, 28> = array<f32, 28>(-0.00112818804f, -0.000866606136f, 0.00527962499f, -0.0077550412f, -0.00166760118f, 0.0235200946f, -0.0342787694f, 0.0052064607f, 0.0530220256f, -0.080580241f, 0.028661681f, 0.0703897913f, -0.119206098f, 0.0586470002f, 0.0586470002f, -0.119206098f, 0.0703897913f, 0.028661681f, -0.080580241f, 0.0530220256f, 0.0052064607f, -0.0342787694f, 0.0235200946f, -0.00166760118f, -0.0077550412f, 0.00527962499f, -0.000866606136f, -0.00112818804f);

fn work_Analysis5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_5__27_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis5_taps[j]));
  }
  buf_27_0__28_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_5__27_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_28_0__29_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_27_0__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_28_0__29_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_29_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis5_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_29_0__30_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis5_taps[j]));
  }
  buf_30_0__31_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_29_0__30_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_30_0__31_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_31_0__1_5[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis6_taps: array<f32, 28> = array<f32, 28>(-0.00176980988f, 0.00263285815f, -0.00260078701f, -0.000983333353f, 0.0107931632f, -0.0255207898f, 0.0371946322f, -0.0336976134f, 0.0067231527f, 0.0396944943f, -0.0870777825f, 0.110421795f, -0.0925934229f, 0.0361146444f, 0.0361146444f, -0.0925934229f, 0.110421795f, -0.0870777825f, 0.0396944943f, 0.0067231527f, -0.0336976134f, 0.0371946322f, -0.0255207898f, 0.0107931632f, -0.000983333353f, -0.00260078701f, 0.00263285815f, -0.00176980988f);

fn work_Analysis6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_6__32_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis6_taps[j]));
  }
  buf_32_0__33_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_6__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_33_0__34_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_33_0__34_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_34_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis6_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_34_0__35_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis6_taps[j]));
  }
  buf_35_0__36_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_34_0__35_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_35_0__36_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_36_0__1_6[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Analysis7_taps: array<f32, 28> = array<f32, 28>(-0.00083831934f, 0.00189389643f, -0.00426484824f, 0.00884766268f, -0.0162807732f, 0.0265407354f, -0.0386811262f, 0.0508306224f, -0.0604923926f, 0.0650922177f, -0.0626377463f, 0.0523043335f, -0.0347711363f, 0.0121944231f, 0.0121944231f, -0.0347711363f, 0.0523043335f, -0.0626377463f, 0.0650922177f, -0.0604923926f, 0.0508306224f, -0.0386811262f, 0.0265407354f, -0.0162807732f, 0.00884766268f, -0.00426484824f, 0.00189389643f, -0.00083831934f);

fn work_Analysis7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_0_7__37_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Analysis7_taps[j]));
  }
  buf_37_0__38_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_0_7__37_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Down7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_38_0__39_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d0: f32 = _t2;
  let _t3: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d1: f32 = _t3;
  let _t4: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d2: f32 = _t4;
  let _t5: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d3: f32 = _t5;
  let _t6: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d4: f32 = _t6;
  let _t7: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d5: f32 = _t7;
  let _t8: f32 = buf_37_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  var _d6: f32 = _t8;
  _ = _pop;
  _ = _push;
}

fn work_Up7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_38_0__39_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  buf_39_0__40_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(0.0f); _push++;
  _ = _pop;
  _ = _push;
}

var<private> Synthesis7_taps: array<f32, 28> = array<f32, 28>(0.000147995886f, -0.00090042747f, -0.00271361585f, -0.00553057706f, -0.0086438421f, -0.0101887538f, -0.00747310993f, 0.00217755438f, 0.020318715f, 0.0464402047f, 0.0775797046f, 0.108730123f, 0.133993916f, 0.148153686f, 0.148153686f, 0.133993916f, 0.108730123f, 0.0775797046f, 0.0464402047f, 0.020318715f, 0.00217755438f, -0.00747310993f, -0.0101887538f, -0.0086438421f, -0.00553057706f, -0.00271361585f, -0.00090042747f, 0.000147995886f);

fn work_Synthesis7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_39_0__40_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * Synthesis7_taps[j]));
  }
  buf_40_0__41_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_39_0__40_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Gain7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_40_0__41_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_41_0__1_7[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_Combine(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_1_0__42_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    acc = (acc + _t1);
  }
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 7)
  if tid == 0 { for (var s: i32 = 0; s < 7; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 7; it++) {
    if tid == 0 {
      for (var s: i32 = 6; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (Analysis0, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Analysis0, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (Combine, k=1) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Combine, k=0) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Gain0, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
        // (Gain0, k=1) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
        // (Gain0, k=0) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
      }
      case 1: {
        // (split_bank, k=1) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (Combine, k=3) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Combine, k=2) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Synthesis0, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
        // (Synthesis0, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis0(region_5(it - 3), region_5(it - 3), tid);
        }
      }
      case 2: {
        // (Analysis1, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (Analysis1, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis1(region_7(it - 1), region_7(it - 1), tid);
        }
        // (split_bank, k=2) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (Combine, k=5) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Combine, k=4) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
      }
      case 3: {
        // (split_bank, k=3) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (Combine, k=7) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Combine, k=6) o=1048 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_Combine(region_42(it - 6), region_42(it - 6), tid);
        }
        // (Synthesis1, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
        // (Synthesis1, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis1(region_10(it - 3), region_10(it - 3), tid);
        }
      }
      case 4: {
        // (Analysis2, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (Analysis2, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis2(region_12(it - 1), region_12(it - 1), tid);
        }
        // (split_bank, k=5) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (join_bank, k=2) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
        // (join_bank, k=1) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
      }
      case 5: {
        // (split_bank, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (Synthesis2, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (Synthesis2, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis2(region_15(it - 3), region_15(it - 3), tid);
        }
        // (join_bank, k=5) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
        // (join_bank, k=4) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
      }
      case 6: {
        // (Analysis3, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (Analysis3, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis3(region_17(it - 1), region_17(it - 1), tid);
        }
        // (split_bank, k=4) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (join_bank, k=7) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
        // (join_bank, k=6) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
      }
      case 7: {
        // (Down0, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down0(region_3(it - 2), region_3(it - 2), tid);
        }
        // (split_bank, k=7) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (split_bank, k=6) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_bank(region_0(it - 0), region_0(it - 0), tid);
        }
        // (Synthesis3, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Synthesis3, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis3(region_20(it - 3), region_20(it - 3), tid);
        }
        // (Gain0, k=5) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
        // (Gain0, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
        // (Gain0, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
        // (Up0, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up0(region_4(it - 2), region_4(it - 2), tid);
        }
      }
      case 8: {
        // (Analysis4, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Analysis4, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis4(region_22(it - 1), region_22(it - 1), tid);
        }
        // (Down3, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down3(region_18(it - 2), region_18(it - 2), tid);
        }
        // (Down2, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down2(region_13(it - 2), region_13(it - 2), tid);
        }
        // (Down1, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down1(region_8(it - 2), region_8(it - 2), tid);
        }
        // (Up3, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up3(region_19(it - 2), region_19(it - 2), tid);
        }
        // (Up2, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up2(region_14(it - 2), region_14(it - 2), tid);
        }
        // (Up1, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up1(region_9(it - 2), region_9(it - 2), tid);
        }
        // (Down4, k=0) o=16818 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Down4(region_23(it - 1), region_23(it - 1), tid);
        }
      }
      case 9: {
        // (Down7, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down7(region_38(it - 2), region_38(it - 2), tid);
        }
        // (Down6, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down6(region_33(it - 2), region_33(it - 2), tid);
        }
        // (Down5, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Down5(region_28(it - 2), region_28(it - 2), tid);
        }
        // (Up7, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up7(region_39(it - 2), region_39(it - 2), tid);
        }
        // (Up6, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up6(region_34(it - 2), region_34(it - 2), tid);
        }
        // (Up5, k=0) o=1048 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up5(region_29(it - 2), region_29(it - 2), tid);
        }
        // (Up4, k=0) o=16818 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Up4(region_24(it - 2), region_24(it - 2), tid);
        }
        // (Synthesis4, k=7) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=6) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=5) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=4) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=3) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=2) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=1) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
        // (Synthesis4, k=0) o=17866 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_Synthesis4(region_25(it - 2), region_25(it - 2), tid);
        }
      }
      case 10: {
        // (Analysis5, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Analysis5, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis5(region_27(it - 1), region_27(it - 1), tid);
        }
        // (Gain2, k=0) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain1, k=7) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=6) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=5) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=1) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain1, k=0) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (Gain0, k=7) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
        // (Gain0, k=6) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain0(region_6(it - 4), region_6(it - 4), tid);
        }
      }
      case 11: {
        // (Synthesis5, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Synthesis5, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis5(region_30(it - 3), region_30(it - 3), tid);
        }
        // (Gain3, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain3, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain3, k=1) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain3, k=0) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain2, k=7) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain2, k=6) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain2, k=5) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain2, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain2, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain2, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
        // (Gain2, k=1) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain2(region_16(it - 4), region_16(it - 4), tid);
        }
      }
      case 12: {
        // (Analysis6, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Analysis6, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis6(region_32(it - 1), region_32(it - 1), tid);
        }
        // (Gain3, k=7) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain3, k=6) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain3, k=5) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain3, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain3(region_21(it - 4), region_21(it - 4), tid);
        }
        // (Gain4, k=6) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
        // (Gain4, k=5) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
        // (Gain4, k=4) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
        // (Gain4, k=3) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
        // (Gain4, k=2) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
        // (Gain4, k=1) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
        // (Gain4, k=0) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
      }
      case 13: {
        // (Synthesis6, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Synthesis6, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis6(region_35(it - 3), region_35(it - 3), tid);
        }
        // (Gain5, k=7) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=6) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=5) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=1) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain5, k=0) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain5(region_31(it - 4), region_31(it - 4), tid);
        }
        // (Gain6, k=1) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain6(region_36(it - 3), region_36(it - 3), tid);
        }
        // (Gain6, k=0) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain6(region_36(it - 3), region_36(it - 3), tid);
        }
        // (Gain4, k=7) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain4(region_26(it - 3), region_26(it - 3), tid);
        }
      }
      case 14: {
        // (Analysis7, k=7) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=6) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=5) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=4) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=3) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=2) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=1) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Analysis7, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_Analysis7(region_37(it - 1), region_37(it - 1), tid);
        }
        // (Gain7, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain7(region_41(it - 4), region_41(it - 4), tid);
        }
        // (Gain7, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain7(region_41(it - 4), region_41(it - 4), tid);
        }
        // (Gain7, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain7(region_41(it - 4), region_41(it - 4), tid);
        }
        // (Gain7, k=1) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain7(region_41(it - 4), region_41(it - 4), tid);
        }
        // (Gain7, k=0) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain7(region_41(it - 4), region_41(it - 4), tid);
        }
        // (Gain6, k=7) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain6(region_36(it - 4), region_36(it - 4), tid);
        }
        // (Gain6, k=6) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain6(region_36(it - 4), region_36(it - 4), tid);
        }
        // (Gain6, k=5) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain6(region_36(it - 4), region_36(it - 4), tid);
        }
        // (Gain6, k=4) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain6(region_36(it - 4), region_36(it - 4), tid);
        }
        // (Gain6, k=3) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain6(region_36(it - 4), region_36(it - 4), tid);
        }
        // (Gain6, k=2) o=1048 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Gain6(region_36(it - 4), region_36(it - 4), tid);
        }
      }
      case 15: {
        // (Synthesis7, k=7) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=6) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=5) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=4) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=3) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=2) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=1) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (Synthesis7, k=0) o=1048 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Synthesis7(region_40(it - 3), region_40(it - 3), tid);
        }
        // (join_bank, k=3) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
        // (join_bank, k=0) o=1048 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_bank(region_1(it - 5), region_1(it - 5), tid);
        }
        // (Gain7, k=7) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain7(region_41(it - 3), region_41(it - 3), tid);
        }
        // (Gain7, k=6) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain7(region_41(it - 3), region_41(it - 3), tid);
        }
        // (Gain7, k=5) o=17866 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_Gain7(region_41(it - 3), region_41(it - 3), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
