// streamit_gpu artifact (wgsl)
// quality: heuristic (completed)
// II: 33636 (lower bound 33636, binding res_mii_sharp)
// schedule signature: 715546b5ce49a8a44e84656ea3e01158
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_4_0__6_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_6_0__5_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_4_1__7_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_7_0__5_1: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_5_0__8_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_8_0__9_0: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_2_0__4_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_9_0__3_0: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_10_0__12_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_12_0__11_0: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_10_1__13_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_13_0__11_1: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_11_0__14_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_14_0__15_0: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_2_1__10_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_15_0__3_1: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_16_0__18_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_18_0__17_0: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_16_1__19_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_19_0__17_1: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_17_0__20_0: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_20_0__21_0: array<f32>;
@group(0) @binding(22) var<storage, read_write> buf_2_2__16_0: array<f32>;
@group(0) @binding(23) var<storage, read_write> buf_21_0__3_2: array<f32>;
@group(0) @binding(24) var<storage, read_write> buf_22_0__24_0: array<f32>;
@group(0) @binding(25) var<storage, read_write> buf_24_0__23_0: array<f32>;
@group(0) @binding(26) var<storage, read_write> buf_22_1__25_0: array<f32>;
@group(0) @binding(27) var<storage, read_write> buf_25_0__23_1: array<f32>;
@group(0) @binding(28) var<storage, read_write> buf_23_0__26_0: array<f32>;
@group(0) @binding(29) var<storage, read_write> buf_26_0__27_0: array<f32>;
@group(0) @binding(30) var<storage, read_write> buf_2_3__22_0: array<f32>;
@group(0) @binding(31) var<storage, read_write> buf_27_0__3_3: array<f32>;
@group(0) @binding(32) var<storage, read_write> buf_28_0__30_0: array<f32>;
@group(0) @binding(33) var<storage, read_write> buf_30_0__29_0: array<f32>;
@group(0) @binding(34) var<storage, read_write> buf_28_1__31_0: array<f32>;
@group(0) @binding(35) var<storage, read_write> buf_31_0__29_1: array<f32>;
@group(0) @binding(36) var<storage, read_write> buf_29_0__32_0: array<f32>;
@group(0) @binding(37) var<storage, read_write> buf_32_0__33_0: array<f32>;
@group(0) @binding(38) var<storage, read_write> buf_2_4__28_0: array<f32>;
@group(0) @binding(39) var<storage, read_write> buf_33_0__3_4: array<f32>;
@group(0) @binding(40) var<storage, read_write> buf_34_0__36_0: array<f32>;
@group(0) @binding(41) var<storage, read_write> buf_36_0__35_0: array<f32>;
@group(0) @binding(42) var<storage, read_write> buf_34_1__37_0: array<f32>;
@group(0) @binding(43) var<storage, read_write> buf_37_0__35_1: array<f32>;
@group(0) @binding(44) var<storage, read_write> buf_35_0__38_0: array<f32>;
@group(0) @binding(45) var<storage, read_write> buf_38_0__39_0: array<f32>;
@group(0) @binding(46) var<storage, read_write> buf_2_5__34_0: array<f32>;
@group(0) @binding(47) var<storage, read_write> buf_39_0__3_5: array<f32>;
@group(0) @binding(48) var<storage, read_write> buf_40_0__42_0: array<f32>;
@group(0) @binding(49) var<storage, read_write> buf_42_0__41_0: array<f32>;
@group(0) @binding(50) var<storage, read_write> buf_40_1__43_0: array<f32>;
@group(0) @binding(51) var<storage, read_write> buf_43_0__41_1: array<f32>;
@group(0) @binding(52) var<storage, read_write> buf_41_0__44_0: array<f32>;
@group(0) @binding(53) var<storage, read_write> buf_44_0__45_0: array<f32>;
@group(0) @binding(54) var<storage, read_write> buf_2_6__40_0: array<f32>;
@group(0) @binding(55) var<storage, read_write> buf_45_0__3_6: array<f32>;
@group(0) @binding(56) var<storage, read_write> buf_46_0__48_0: array<f32>;
@group(0) @binding(57) var<storage, read_write> buf_48_0__47_0: array<f32>;
@group(0) @binding(58) var<storage, read_write> buf_46_1__49_0: array<f32>;
@group(0) @binding(59) var<storage, read_write> buf_49_0__47_1: array<f32>;
@group(0) @binding(60) var<storage, read_write> buf_47_0__50_0: array<f32>;
@group(0) @binding(61) var<storage, read_write> buf_50_0__51_0: array<f32>;
@group(0) @binding(62) var<storage, read_write> buf_2_7__46_0: array<f32>;
@group(0) @binding(63) var<storage, read_write> buf_51_0__3_7: array<f32>;
@group(0) @binding(64) var<storage, read_write> buf_52_0__54_0: array<f32>;
@group(0) @binding(65) var<storage, read_write> buf_54_0__53_0: array<f32>;
@group(0) @binding(66) var<storage, read_write> buf_52_1__55_0: array<f32>;
@group(0) @binding(67) var<storage, read_write> buf_55_0__53_1: array<f32>;
@group(0) @binding(68) var<storage, read_write> buf_53_0__56_0: array<f32>;
@group(0) @binding(69) var<storage, read_write> buf_56_0__57_0: array<f32>;
@group(0) @binding(70) var<storage, read_write> buf_2_8__52_0: array<f32>;
@group(0) @binding(71) var<storage, read_write> buf_57_0__3_8: array<f32>;
@group(0) @binding(72) var<storage, read_write> buf_58_0__60_0: array<f32>;
@group(0) @binding(73) var<storage, read_write> buf_60_0__59_0: array<f32>;
@group(0) @binding(74) var<storage, read_write> buf_58_1__61_0: array<f32>;
@group(0) @binding(75) var<storage, read_write> buf_61_0__59_1: array<f32>;
@group(0) @binding(76) var<storage, read_write> buf_59_0__62_0: array<f32>;
@group(0) @binding(77) var<storage, read_write> buf_62_0__63_0: array<f32>;
@group(0) @binding(78) var<storage, read_write> buf_2_9__58_0: array<f32>;
@group(0) @binding(79) var<storage, read_write> buf_63_0__3_9: array<f32>;
@group(0) @binding(80) var<storage, read_write> buf_0_0__1_0: array<f32>;
@group(0) @binding(81) var<storage, read_write> buf_1_0__2_0: array<f32>;
@group(0) @binding(82) var<storage, read_write> buf_3_0__64_0: array<f32>;
@group(0) @binding(83) var<storage, read> stream_in: array<f32>;
@group(0) @binding(84) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(85) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 7>;

fn region_0(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_1(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_2(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_3(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 5120; }
fn region_4(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_5(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_6(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_7(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_8(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_9(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_10(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_11(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_12(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_13(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_14(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_15(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_16(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_17(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_18(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_19(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_20(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_21(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_22(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_23(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_24(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_25(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_26(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_27(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_28(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_29(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_30(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_31(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_32(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_33(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_34(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_35(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_36(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_37(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_38(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_39(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_40(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_41(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_42(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_43(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_44(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_45(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_46(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_47(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_48(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_49(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_50(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_51(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_52(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_53(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_54(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_55(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_56(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_57(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_58(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_59(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 1024; }
fn region_60(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_61(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_62(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_63(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 512; }
fn region_64(it: i32) -> i32 { return ((it % 8) + 8) % 8 * 0; }

var<private> FrontLPF_taps: array<f32, 28> = array<f32, 28>(0.00133380195f, 0.00166377302f, -0.0025234102f, -0.00402183209f, 0.00628579642f, 0.00947459282f, -0.0138085066f, -0.0196250473f, 0.0274976855f, 0.0385135313f, -0.0550267643f, -0.0832184333f, 0.145890048f, 0.448758006f, 0.448758006f, 0.145890048f, -0.0832184333f, -0.0550267643f, 0.0385135313f, 0.0274976855f, -0.0196250473f, -0.0138085066f, 0.00947459282f, 0.00628579642f, -0.00402183209f, -0.0025234102f, 0.00166377302f, 0.00133380195f);

fn work_FrontLPF(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (stream_in[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * FrontLPF_taps[j]));
  }
  buf_0_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_FMDemod(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var x: f32 = (buf_0_0__1_0[in_base + (128 * (_pop + (0)) + (tid / 128) * 128 * 1 + (tid % 128))] * buf_0_0__1_0[in_base + (128 * (_pop + (1)) + (tid / 128) * 128 * 1 + (tid % 128))]);
  var y: f32 = (x / (1.0f + ((0.28f * x) * x)));
  buf_1_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((0.5f * y)); _push++;
  let _t1: f32 = buf_0_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_split_equalizer(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_1_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  buf_2_0__4_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_equalizer(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_9_0__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
  buf_3_0__64_0[out_base + (128 * (_push) + (tid / 128) * 128 * 10 + (tid % 128))] = f32(_t10); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_0__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_4_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_4_0__6_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_6_0__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_5_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_6_0__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_5_0__8_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF0_hi_taps: array<f32, 28> = array<f32, 28>(-0.000638954838f, -0.00166377302f, -0.00335766562f, -0.00566248714f, -0.00765153057f, -0.00753141007f, -0.00305487997f, 0.00774312141f, 0.0257168311f, 0.0499867523f, 0.0777811971f, 0.104861343f, 0.12645479f, 0.138442352f, 0.138442352f, 0.12645479f, 0.104861343f, 0.0777811971f, 0.0499867523f, 0.0257168311f, 0.00774312141f, -0.00305487997f, -0.00753141007f, -0.00765153057f, -0.00566248714f, -0.00335766562f, -0.00166377302f, -0.000638954838f);

fn work_EqLPF0_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_4_0__6_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF0_hi_taps[j]));
  }
  buf_6_0__5_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_4_0__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF0_lo_taps: array<f32, 28> = array<f32, 28>(0.00160831878f, 0.00217382421f, 0.0034700391f, 0.00567019611f, 0.00886205531f, 0.0130288795f, 0.0180416833f, 0.023664182f, 0.0295703628f, 0.0353730701f, 0.0406606274f, 0.0450374915f, 0.0481643737f, 0.0497932537f, 0.0497932537f, 0.0481643737f, 0.0450374915f, 0.0406606274f, 0.0353730701f, 0.0295703628f, 0.023664182f, 0.0180416833f, 0.0130288795f, 0.00886205531f, 0.00567019611f, 0.0034700391f, 0.00217382421f, 0.00160831878f);

fn work_EqLPF0_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_4_1__7_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF0_lo_taps[j]));
  }
  buf_7_0__5_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_4_1__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_5_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_5_0__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_8_0__9_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_8_0__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_9_0__3_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.0f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_1__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_11_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_11_0__14_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF1_hi_taps: array<f32, 28> = array<f32, 28>(-0.000610999209f, 0.00090042747f, 0.00320473796f, 0.00548614167f, 0.00488051558f, -0.00188794937f, -0.0148493425f, -0.0277505841f, -0.028762478f, -0.00597682831f, 0.0447466767f, 0.114436891f, 0.182338246f, 0.224329154f, 0.224329154f, 0.182338246f, 0.114436891f, 0.0447466767f, -0.00597682831f, -0.028762478f, -0.0277505841f, -0.0148493425f, -0.00188794937f, 0.00488051558f, 0.00548614167f, 0.00320473796f, 0.00090042747f, -0.000610999209f);

fn work_EqLPF1_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_10_0__12_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF1_hi_taps[j]));
  }
  buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF1_lo_taps: array<f32, 28> = array<f32, 28>(-0.000638954838f, -0.00166377302f, -0.00335766562f, -0.00566248714f, -0.00765153057f, -0.00753141007f, -0.00305487997f, 0.00774312141f, 0.0257168311f, 0.0499867523f, 0.0777811971f, 0.104861343f, 0.12645479f, 0.138442352f, 0.138442352f, 0.12645479f, 0.104861343f, 0.0777811971f, 0.0499867523f, 0.0257168311f, 0.00774312141f, -0.00305487997f, -0.00753141007f, -0.00765153057f, -0.00566248714f, -0.00335766562f, -0.00166377302f, -0.000638954838f);

fn work_EqLPF1_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_10_1__13_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF1_lo_taps[j]));
  }
  buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_11_0__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_11_0__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_14_0__15_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_14_0__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_15_0__3_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.1f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_2__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_16_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_16_0__18_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_18_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_17_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_18_0__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_17_0__20_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF2_hi_taps: array<f32, 28> = array<f32, 28>(0.00159263956f, 3.0270405e-18f, -0.00301310319f, -0.0051464115f, -0.00111414458f, 0.0103241822f, 0.0185724003f, 0.00690214114f, -0.0266203939f, -0.0535016094f, -0.0286473041f, 0.0691756452f, 0.205912559f, 0.305739987f, 0.305739987f, 0.205912559f, 0.0691756452f, -0.0286473041f, -0.0535016094f, -0.0266203939f, 0.00690214114f, 0.0185724003f, 0.0103241822f, -0.00111414458f, -0.0051464115f, -0.00301310319f, 3.0270405e-18f, 0.00159263956f);

fn work_EqLPF2_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_16_0__18_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF2_hi_taps[j]));
  }
  buf_18_0__17_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_16_0__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF2_lo_taps: array<f32, 28> = array<f32, 28>(-0.000610999209f, 0.00090042747f, 0.00320473796f, 0.00548614167f, 0.00488051558f, -0.00188794937f, -0.0148493425f, -0.0277505841f, -0.028762478f, -0.00597682831f, 0.0447466767f, 0.114436891f, 0.182338246f, 0.224329154f, 0.224329154f, 0.182338246f, 0.114436891f, 0.0447466767f, -0.00597682831f, -0.028762478f, -0.0277505841f, -0.0148493425f, -0.00188794937f, 0.00488051558f, 0.00548614167f, 0.00320473796f, 0.00090042747f, -0.000610999209f);

fn work_EqLPF2_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_16_1__19_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF2_lo_taps[j]));
  }
  buf_19_0__17_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_16_1__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_17_0__20_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_17_0__20_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_20_0__21_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_20_0__21_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_21_0__3_2[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.2f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_3__22_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_22_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_22_0__24_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_24_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_23_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_24_0__23_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_23_0__26_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF3_hi_taps: array<f32, 28> = array<f32, 28>(-0.00187488947f, -0.00090042747f, 0.00278507589f, 0.00465341427f, -0.00287945046f, -0.013384223f, -0.00455876246f, 0.0241080061f, 0.027926208f, -0.0254864329f, -0.0762027239f, -0.00923374403f, 0.193000517f, 0.381050487f, 0.381050487f, 0.193000517f, -0.00923374403f, -0.0762027239f, -0.0254864329f, 0.027926208f, 0.0241080061f, -0.00455876246f, -0.013384223f, -0.00287945046f, 0.00465341427f, 0.00278507589f, -0.00090042747f, -0.00187488947f);

fn work_EqLPF3_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_22_0__24_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF3_hi_taps[j]));
  }
  buf_24_0__23_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_22_0__24_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF3_lo_taps: array<f32, 28> = array<f32, 28>(0.00159263956f, 3.0270405e-18f, -0.00301310319f, -0.0051464115f, -0.00111414458f, 0.0103241822f, 0.0185724003f, 0.00690214114f, -0.0266203939f, -0.0535016094f, -0.0286473041f, 0.0691756452f, 0.205912559f, 0.305739987f, 0.305739987f, 0.205912559f, 0.0691756452f, -0.0286473041f, -0.0535016094f, -0.0266203939f, 0.00690214114f, 0.0185724003f, 0.0103241822f, -0.00111414458f, -0.0051464115f, -0.00301310319f, 3.0270405e-18f, 0.00159263956f);

fn work_EqLPF3_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_22_1__25_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF3_lo_taps[j]));
  }
  buf_25_0__23_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_22_1__25_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_23_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_23_0__26_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_26_0__27_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_26_0__27_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_27_0__3_3[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.3f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_4__28_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_28_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_28_0__30_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_30_0__29_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_29_0__32_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_30_0__29_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_29_0__32_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF4_hi_taps: array<f32, 28> = array<f32, 28>(0.00133380195f, 0.00166377302f, -0.0025234102f, -0.00402183209f, 0.00628579642f, 0.00947459282f, -0.0138085066f, -0.0196250473f, 0.0274976855f, 0.0385135313f, -0.0550267643f, -0.0832184333f, 0.145890048f, 0.448758006f, 0.448758006f, 0.145890048f, -0.0832184333f, -0.0550267643f, 0.0385135313f, 0.0274976855f, -0.0196250473f, -0.0138085066f, 0.00947459282f, 0.00628579642f, -0.00402183209f, -0.0025234102f, 0.00166377302f, 0.00133380195f);

fn work_EqLPF4_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_28_0__30_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF4_hi_taps[j]));
  }
  buf_30_0__29_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_28_0__30_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF4_lo_taps: array<f32, 28> = array<f32, 28>(-0.00187488947f, -0.00090042747f, 0.00278507589f, 0.00465341427f, -0.00287945046f, -0.013384223f, -0.00455876246f, 0.0241080061f, 0.027926208f, -0.0254864329f, -0.0762027239f, -0.00923374403f, 0.193000517f, 0.381050487f, 0.381050487f, 0.193000517f, -0.00923374403f, -0.0762027239f, -0.0254864329f, 0.027926208f, 0.0241080061f, -0.00455876246f, -0.013384223f, -0.00287945046f, 0.00465341427f, 0.00278507589f, -0.00090042747f, -0.00187488947f);

fn work_EqLPF4_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_28_1__31_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF4_lo_taps[j]));
  }
  buf_31_0__29_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_28_1__31_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_29_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_29_0__32_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_32_0__33_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_32_0__33_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_33_0__3_4[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.4f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_5__34_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_34_0__36_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_34_0__36_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_36_0__35_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_35_0__38_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_36_0__35_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_35_0__38_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF5_hi_taps: array<f32, 28> = array<f32, 28>(-0.000206989725f, -0.00217382421f, 0.00223126653f, 0.00327047432f, -0.00841018658f, -0.000631183934f, 0.0189886122f, -0.0137509639f, -0.0270623783f, 0.0481354955f, 0.0157808255f, -0.117325842f, 0.0729288181f, 0.507511599f, 0.507511599f, 0.0729288181f, -0.117325842f, 0.0157808255f, 0.0481354955f, -0.0270623783f, -0.0137509639f, 0.0189886122f, -0.000631183934f, -0.00841018658f, 0.00327047432f, 0.00223126653f, -0.00217382421f, -0.000206989725f);

fn work_EqLPF5_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_34_0__36_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF5_hi_taps[j]));
  }
  buf_36_0__35_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_34_0__36_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF5_lo_taps: array<f32, 28> = array<f32, 28>(0.00133380195f, 0.00166377302f, -0.0025234102f, -0.00402183209f, 0.00628579642f, 0.00947459282f, -0.0138085066f, -0.0196250473f, 0.0274976855f, 0.0385135313f, -0.0550267643f, -0.0832184333f, 0.145890048f, 0.448758006f, 0.448758006f, 0.145890048f, -0.0832184333f, -0.0550267643f, 0.0385135313f, 0.0274976855f, -0.0196250473f, -0.0138085066f, 0.00947459282f, 0.00628579642f, -0.00402183209f, -0.0025234102f, 0.00166377302f, 0.00133380195f);

fn work_EqLPF5_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_34_1__37_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF5_lo_taps[j]));
  }
  buf_37_0__35_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_34_1__37_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_35_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_35_0__38_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_38_0__39_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_38_0__39_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_39_0__3_5[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.5f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_6__40_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_40_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_40_0__42_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_42_0__41_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_41_0__44_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_42_0__41_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_41_0__44_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF6_hi_taps: array<f32, 28> = array<f32, 28>(-0.0010107198f, 0.00235293037f, -0.00191217343f, -0.00242171743f, 0.00881936251f, -0.00854090629f, -0.00603453866f, 0.0268820649f, -0.0283478402f, -0.0102059778f, 0.0723548309f, -0.0952121073f, -0.0129549202f, 0.556138972f, 0.556138972f, -0.0129549202f, -0.0952121073f, 0.0723548309f, -0.0102059778f, -0.0283478402f, 0.0268820649f, -0.00603453866f, -0.00854090629f, 0.00881936251f, -0.00242171743f, -0.00191217343f, 0.00235293037f, -0.0010107198f);

fn work_EqLPF6_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_40_0__42_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF6_hi_taps[j]));
  }
  buf_42_0__41_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_40_0__42_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF6_lo_taps: array<f32, 28> = array<f32, 28>(-0.000206989725f, -0.00217382421f, 0.00223126653f, 0.00327047432f, -0.00841018658f, -0.000631183934f, 0.0189886122f, -0.0137509639f, -0.0270623783f, 0.0481354955f, 0.0157808255f, -0.117325842f, 0.0729288181f, 0.507511599f, 0.507511599f, 0.0729288181f, -0.117325842f, 0.0157808255f, 0.0481354955f, -0.0270623783f, -0.0137509639f, 0.0189886122f, -0.000631183934f, -0.00841018658f, 0.00327047432f, 0.00223126653f, -0.00217382421f, -0.000206989725f);

fn work_EqLPF6_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_40_1__43_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF6_lo_taps[j]));
  }
  buf_43_0__41_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_40_1__43_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_41_0__44_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_41_0__44_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_44_0__45_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_44_0__45_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_45_0__3_6[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.6f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_7__46_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_46_0__48_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_46_0__48_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_48_0__47_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_47_0__50_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_48_0__47_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_47_0__50_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF7_hi_taps: array<f32, 28> = array<f32, 28>(0.00178458265f, -0.00217382421f, 0.00156998493f, 0.00150083853f, -0.00742987489f, 0.0132654237f, -0.0126825367f, -0.000435941012f, 0.0261718412f, -0.0541374335f, 0.0636680808f, -0.0274738667f, -0.0965431314f, 0.59366988f, 0.59366988f, -0.0965431314f, -0.0274738667f, 0.0636680808f, -0.0541374335f, 0.0261718412f, -0.000435941012f, -0.0126825367f, 0.0132654237f, -0.00742987489f, 0.00150083853f, 0.00156998493f, -0.00217382421f, 0.00178458265f);

fn work_EqLPF7_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_46_0__48_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF7_hi_taps[j]));
  }
  buf_48_0__47_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_46_0__48_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF7_lo_taps: array<f32, 28> = array<f32, 28>(-0.0010107198f, 0.00235293037f, -0.00191217343f, -0.00242171743f, 0.00881936251f, -0.00854090629f, -0.00603453866f, 0.0268820649f, -0.0283478402f, -0.0102059778f, 0.0723548309f, -0.0952121073f, -0.0129549202f, 0.556138972f, 0.556138972f, -0.0129549202f, -0.0952121073f, 0.0723548309f, -0.0102059778f, -0.0283478402f, 0.0268820649f, -0.00603453866f, -0.00854090629f, 0.00881936251f, -0.00242171743f, -0.00191217343f, 0.00235293037f, -0.0010107198f);

fn work_EqLPF7_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_46_1__49_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF7_lo_taps[j]));
  }
  buf_49_0__47_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_46_1__49_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_47_0__50_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_47_0__50_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_50_0__51_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_50_0__51_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_51_0__3_7[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.7f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf8(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_8__52_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_52_0__54_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_52_0__54_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf8(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_54_0__53_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_53_0__56_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_54_0__53_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_53_0__56_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF8_hi_taps: array<f32, 28> = array<f32, 28>(-0.00177476534f, 0.00166377302f, -0.00120883401f, -0.000535262628f, 0.00452510256f, -0.0110821334f, 0.0192877531f, -0.0266519987f, 0.029170019f, -0.0216311993f, -0.00244437259f, 0.0534295231f, -0.163024533f, 0.619355481f, 0.619355481f, -0.163024533f, 0.0534295231f, -0.00244437259f, -0.0216311993f, 0.029170019f, -0.0266519987f, 0.0192877531f, -0.0110821334f, 0.00452510256f, -0.000535262628f, -0.00120883401f, 0.00166377302f, -0.00177476534f);

fn work_EqLPF8_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_52_0__54_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF8_hi_taps[j]));
  }
  buf_54_0__53_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_52_0__54_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF8_lo_taps: array<f32, 28> = array<f32, 28>(0.00178458265f, -0.00217382421f, 0.00156998493f, 0.00150083853f, -0.00742987489f, 0.0132654237f, -0.0126825367f, -0.000435941012f, 0.0261718412f, -0.0541374335f, 0.0636680808f, -0.0274738667f, -0.0965431314f, 0.59366988f, 0.59366988f, -0.0965431314f, -0.0274738667f, 0.0636680808f, -0.0541374335f, 0.0261718412f, -0.000435941012f, -0.0126825367f, 0.0132654237f, -0.00742987489f, 0.00150083853f, 0.00156998493f, -0.00217382421f, 0.00178458265f);

fn work_EqLPF8_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_52_1__55_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF8_lo_taps[j]));
  }
  buf_55_0__53_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_52_1__55_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract8(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_53_0__56_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_53_0__56_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_56_0__57_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain8(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_56_0__57_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_57_0__3_8[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.8f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_split_bpf9(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_9__58_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var x: f32 = _t1;
  buf_58_0__60_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  buf_58_0__60_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(x); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_bpf9(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_60_0__59_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_59_0__62_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_60_0__59_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  buf_59_0__62_0[out_base + (128 * (_push) + (tid / 128) * 128 * 2 + (tid % 128))] = f32(_t2); _push++;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF9_hi_taps: array<f32, 28> = array<f32, 28>(0.000985579014f, -0.00090042747f, 0.00083308268f, -0.000446254112f, -0.000697458879f, 0.00312795723f, -0.00747310993f, 0.0145014294f, -0.0252554758f, 0.0414165438f, -0.0663521135f, 0.108730123f, -0.200619055f, 0.632683276f, 0.632683276f, -0.200619055f, 0.108730123f, -0.0663521135f, 0.0414165438f, -0.0252554758f, 0.0145014294f, -0.00747310993f, 0.00312795723f, -0.000697458879f, -0.000446254112f, 0.00083308268f, -0.00090042747f, 0.000985579014f);

fn work_EqLPF9_hi(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_58_0__60_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF9_hi_taps[j]));
  }
  buf_60_0__59_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_58_0__60_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

var<private> EqLPF9_lo_taps: array<f32, 28> = array<f32, 28>(-0.00177476534f, 0.00166377302f, -0.00120883401f, -0.000535262628f, 0.00452510256f, -0.0110821334f, 0.0192877531f, -0.0266519987f, 0.029170019f, -0.0216311993f, -0.00244437259f, 0.0534295231f, -0.163024533f, 0.619355481f, 0.619355481f, -0.163024533f, 0.0534295231f, -0.00244437259f, -0.0216311993f, 0.029170019f, -0.0266519987f, 0.0192877531f, -0.0110821334f, 0.00452510256f, -0.000535262628f, -0.00120883401f, 0.00166377302f, -0.00177476534f);

fn work_EqLPF9_lo(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 28; j++) {
    acc = (acc + (buf_58_1__61_0[in_base + (128 * (_pop + (j)) + (tid / 128) * 128 * 1 + (tid % 128))] * EqLPF9_lo_taps[j]));
  }
  buf_61_0__59_1[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  let _t1: f32 = buf_58_1__61_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  var _d0: f32 = _t1;
  _ = _pop;
  _ = _push;
}

fn work_Subtract9(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_59_0__62_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var a: f32 = _t1;
  let _t2: f32 = buf_59_0__62_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))]; _pop++;
  var b: f32 = _t2;
  buf_62_0__63_0[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((a - b)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqGain9(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_62_0__63_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  buf_63_0__3_9[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32((_t1 * 1.9f)); _push++;
  _ = _pop;
  _ = _push;
}

fn work_EqCombine(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var acc: f32 = 0.0f;
  for (var j: i32 = 0; j < 10; j++) {
    let _t1: f32 = buf_3_0__64_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 10 + (tid % 128))]; _pop++;
    acc = (acc + _t1);
  }
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = f32(acc); _push++;
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 7)
  if tid == 0 { for (var s: i32 = 0; s < 7; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 7; it++) {
    if tid == 0 {
      for (var s: i32 = 6; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (FrontLPF, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_FrontLPF(region_0(it - 0), region_0(it - 0), tid);
        }
        // (EqLPF0_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF0_hi(region_6(it - 3), region_6(it - 3), tid);
        }
      }
      case 1: {
        // (EqLPF1_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF1_hi(region_12(it - 3), region_12(it - 3), tid);
        }
        // (EqLPF0_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF0_lo(region_7(it - 3), region_7(it - 3), tid);
        }
      }
      case 2: {
        // (EqLPF2_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF2_hi(region_18(it - 3), region_18(it - 3), tid);
        }
        // (EqLPF1_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF1_lo(region_13(it - 3), region_13(it - 3), tid);
        }
      }
      case 3: {
        // (EqLPF3_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF3_hi(region_24(it - 3), region_24(it - 3), tid);
        }
        // (EqLPF2_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF2_lo(region_19(it - 3), region_19(it - 3), tid);
        }
      }
      case 4: {
        // (EqLPF4_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF4_hi(region_30(it - 3), region_30(it - 3), tid);
        }
        // (EqLPF3_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF3_lo(region_25(it - 3), region_25(it - 3), tid);
        }
      }
      case 5: {
        // (EqLPF5_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF5_hi(region_36(it - 3), region_36(it - 3), tid);
        }
        // (EqLPF4_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF4_lo(region_31(it - 3), region_31(it - 3), tid);
        }
      }
      case 6: {
        // (EqLPF6_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF6_hi(region_42(it - 3), region_42(it - 3), tid);
        }
        // (EqLPF5_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF5_lo(region_37(it - 3), region_37(it - 3), tid);
        }
      }
      case 7: {
        // (EqLPF7_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF7_hi(region_48(it - 3), region_48(it - 3), tid);
        }
        // (EqLPF6_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF6_lo(region_43(it - 3), region_43(it - 3), tid);
        }
      }
      case 8: {
        // (EqLPF8_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF8_hi(region_54(it - 3), region_54(it - 3), tid);
        }
        // (EqLPF7_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF7_lo(region_49(it - 3), region_49(it - 3), tid);
        }
      }
      case 9: {
        // (EqLPF9_hi, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF9_hi(region_60(it - 3), region_60(it - 3), tid);
        }
        // (EqLPF8_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF8_lo(region_55(it - 3), region_55(it - 3), tid);
        }
      }
      case 10: {
        // (FMDemod, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_FMDemod(region_1(it - 1), region_1(it - 1), tid);
        }
        // (EqLPF9_lo, k=0) o=1842 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_EqLPF9_lo(region_61(it - 3), region_61(it - 3), tid);
        }
        // (join_bpf5, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf5(region_35(it - 4), region_35(it - 4), tid);
        }
        // (join_bpf4, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf4(region_29(it - 4), region_29(it - 4), tid);
        }
        // (join_bpf3, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf3(region_23(it - 4), region_23(it - 4), tid);
        }
        // (join_bpf2, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf2(region_17(it - 4), region_17(it - 4), tid);
        }
        // (join_bpf1, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf1(region_11(it - 4), region_11(it - 4), tid);
        }
        // (join_bpf0, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf0(region_5(it - 4), region_5(it - 4), tid);
        }
        // (split_equalizer, k=0) o=1842 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_split_equalizer(region_2(it - 1), region_2(it - 1), tid);
        }
        // (join_equalizer, k=0) o=2596 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_join_equalizer(region_3(it - 6), region_3(it - 6), tid);
        }
        // (EqCombine, k=0) o=5718 f=6 threads=512
        if stage_on[6] != 0 && tid < 512 {
          work_EqCombine(region_64(it - 6), region_64(it - 6), tid);
        }
      }
      case 11: {
        // (join_bpf9, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf9(region_59(it - 4), region_59(it - 4), tid);
        }
        // (split_bpf9, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf9(region_58(it - 2), region_58(it - 2), tid);
        }
        // (join_bpf8, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf8(region_53(it - 4), region_53(it - 4), tid);
        }
        // (split_bpf8, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf8(region_52(it - 2), region_52(it - 2), tid);
        }
        // (join_bpf7, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf7(region_47(it - 4), region_47(it - 4), tid);
        }
        // (split_bpf7, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf7(region_46(it - 2), region_46(it - 2), tid);
        }
        // (join_bpf6, k=0) o=1842 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_join_bpf6(region_41(it - 4), region_41(it - 4), tid);
        }
        // (split_bpf6, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf6(region_40(it - 2), region_40(it - 2), tid);
        }
        // (Subtract5, k=0) o=1842 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_Subtract5(region_38(it - 5), region_38(it - 5), tid);
        }
        // (split_bpf5, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf5(region_34(it - 2), region_34(it - 2), tid);
        }
        // (Subtract4, k=0) o=1842 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_Subtract4(region_32(it - 5), region_32(it - 5), tid);
        }
        // (split_bpf4, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf4(region_28(it - 2), region_28(it - 2), tid);
        }
        // (Subtract3, k=0) o=1842 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_Subtract3(region_26(it - 5), region_26(it - 5), tid);
        }
        // (split_bpf3, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf3(region_22(it - 2), region_22(it - 2), tid);
        }
        // (Subtract2, k=0) o=1842 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_Subtract2(region_20(it - 5), region_20(it - 5), tid);
        }
        // (split_bpf2, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf2(region_16(it - 2), region_16(it - 2), tid);
        }
        // (Subtract1, k=0) o=1842 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_Subtract1(region_14(it - 5), region_14(it - 5), tid);
        }
        // (split_bpf1, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf1(region_10(it - 2), region_10(it - 2), tid);
        }
        // (Subtract0, k=0) o=1842 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_Subtract0(region_8(it - 5), region_8(it - 5), tid);
        }
        // (split_bpf0, k=0) o=1842 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_split_bpf0(region_4(it - 2), region_4(it - 2), tid);
        }
        // (EqGain5, k=0) o=2596 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_EqGain5(region_39(it - 5), region_39(it - 5), tid);
        }
        // (EqGain4, k=0) o=2596 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_EqGain4(region_33(it - 5), region_33(it - 5), tid);
        }
        // (EqGain3, k=0) o=2596 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_EqGain3(region_27(it - 5), region_27(it - 5), tid);
        }
        // (EqGain2, k=0) o=2596 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_EqGain2(region_21(it - 5), region_21(it - 5), tid);
        }
        // (EqGain1, k=0) o=2596 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_EqGain1(region_15(it - 5), region_15(it - 5), tid);
        }
        // (EqGain0, k=0) o=2596 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_EqGain0(region_9(it - 5), region_9(it - 5), tid);
        }
        // (Subtract9, k=0) o=2916 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Subtract9(region_62(it - 4), region_62(it - 4), tid);
        }
        // (Subtract8, k=0) o=2916 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Subtract8(region_56(it - 4), region_56(it - 4), tid);
        }
        // (Subtract7, k=0) o=2916 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Subtract7(region_50(it - 4), region_50(it - 4), tid);
        }
        // (Subtract6, k=0) o=2916 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_Subtract6(region_44(it - 4), region_44(it - 4), tid);
        }
        // (EqGain9, k=0) o=3670 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_EqGain9(region_63(it - 4), region_63(it - 4), tid);
        }
        // (EqGain8, k=0) o=3670 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_EqGain8(region_57(it - 4), region_57(it - 4), tid);
        }
        // (EqGain7, k=0) o=3670 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_EqGain7(region_51(it - 4), region_51(it - 4), tid);
        }
        // (EqGain6, k=0) o=3670 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_EqGain6(region_45(it - 4), region_45(it - 4), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
