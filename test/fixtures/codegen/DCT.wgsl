// streamit_gpu artifact (wgsl)
// quality: heuristic (completed)
// II: 66404 (lower bound 66404, binding res_mii_sharp)
// schedule signature: 53bae1c0771a5de168a8c58a494ec1ce
// dispatch: 16 workgroups x 512 threads; host loops handled by the iterations uniform

@group(0) @binding(0) var<storage, read_write> buf_0_0__2_0: array<f32>;
@group(0) @binding(1) var<storage, read_write> buf_2_0__1_0: array<f32>;
@group(0) @binding(2) var<storage, read_write> buf_0_1__3_0: array<f32>;
@group(0) @binding(3) var<storage, read_write> buf_3_0__1_1: array<f32>;
@group(0) @binding(4) var<storage, read_write> buf_0_2__4_0: array<f32>;
@group(0) @binding(5) var<storage, read_write> buf_4_0__1_2: array<f32>;
@group(0) @binding(6) var<storage, read_write> buf_0_3__5_0: array<f32>;
@group(0) @binding(7) var<storage, read_write> buf_5_0__1_3: array<f32>;
@group(0) @binding(8) var<storage, read_write> buf_0_4__6_0: array<f32>;
@group(0) @binding(9) var<storage, read_write> buf_6_0__1_4: array<f32>;
@group(0) @binding(10) var<storage, read_write> buf_0_5__7_0: array<f32>;
@group(0) @binding(11) var<storage, read_write> buf_7_0__1_5: array<f32>;
@group(0) @binding(12) var<storage, read_write> buf_0_6__8_0: array<f32>;
@group(0) @binding(13) var<storage, read_write> buf_8_0__1_6: array<f32>;
@group(0) @binding(14) var<storage, read_write> buf_0_7__9_0: array<f32>;
@group(0) @binding(15) var<storage, read_write> buf_9_0__1_7: array<f32>;
@group(0) @binding(16) var<storage, read_write> buf_10_0__12_0: array<f32>;
@group(0) @binding(17) var<storage, read_write> buf_12_0__11_0: array<f32>;
@group(0) @binding(18) var<storage, read_write> buf_10_1__13_0: array<f32>;
@group(0) @binding(19) var<storage, read_write> buf_13_0__11_1: array<f32>;
@group(0) @binding(20) var<storage, read_write> buf_10_2__14_0: array<f32>;
@group(0) @binding(21) var<storage, read_write> buf_14_0__11_2: array<f32>;
@group(0) @binding(22) var<storage, read_write> buf_10_3__15_0: array<f32>;
@group(0) @binding(23) var<storage, read_write> buf_15_0__11_3: array<f32>;
@group(0) @binding(24) var<storage, read_write> buf_10_4__16_0: array<f32>;
@group(0) @binding(25) var<storage, read_write> buf_16_0__11_4: array<f32>;
@group(0) @binding(26) var<storage, read_write> buf_10_5__17_0: array<f32>;
@group(0) @binding(27) var<storage, read_write> buf_17_0__11_5: array<f32>;
@group(0) @binding(28) var<storage, read_write> buf_10_6__18_0: array<f32>;
@group(0) @binding(29) var<storage, read_write> buf_18_0__11_6: array<f32>;
@group(0) @binding(30) var<storage, read_write> buf_10_7__19_0: array<f32>;
@group(0) @binding(31) var<storage, read_write> buf_19_0__11_7: array<f32>;
@group(0) @binding(32) var<storage, read_write> buf_1_0__10_0: array<f32>;
@group(0) @binding(33) var<storage, read> stream_in: array<f32>;
@group(0) @binding(34) var<storage, read_write> stream_out: array<f32>;
@group(0) @binding(35) var<uniform> iterations: i32;

var<workgroup> stage_on: array<i32, 6>;

fn region_0(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_1(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 32768; }
fn region_2(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_3(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_4(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_5(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_6(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_7(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_8(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_9(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_10(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_11(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 0; }
fn region_12(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_13(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_14(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_15(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_16(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_17(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_18(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }
fn region_19(it: i32) -> i32 { return ((it % 7) + 7) % 7 * 4096; }

fn work_split_dct_rank_rows(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t16); _push++;
  let _t17: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t17); _push++;
  let _t18: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t18); _push++;
  let _t19: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t19); _push++;
  let _t20: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t20); _push++;
  let _t21: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t21); _push++;
  let _t22: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t22); _push++;
  let _t23: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t23); _push++;
  let _t24: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t24); _push++;
  let _t25: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t25); _push++;
  let _t26: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t26); _push++;
  let _t27: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t27); _push++;
  let _t28: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t28); _push++;
  let _t29: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t29); _push++;
  let _t30: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t30); _push++;
  let _t31: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t31); _push++;
  let _t32: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t32); _push++;
  let _t33: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t33); _push++;
  let _t34: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t34); _push++;
  let _t35: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t35); _push++;
  let _t36: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t36); _push++;
  let _t37: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t37); _push++;
  let _t38: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t38); _push++;
  let _t39: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t39); _push++;
  let _t40: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t40); _push++;
  let _t41: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t41); _push++;
  let _t42: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t42); _push++;
  let _t43: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t43); _push++;
  let _t44: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t44); _push++;
  let _t45: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t45); _push++;
  let _t46: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t46); _push++;
  let _t47: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t47); _push++;
  let _t48: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t48); _push++;
  let _t49: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t49); _push++;
  let _t50: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t50); _push++;
  let _t51: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t51); _push++;
  let _t52: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t52); _push++;
  let _t53: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t53); _push++;
  let _t54: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t54); _push++;
  let _t55: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t55); _push++;
  let _t56: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t56); _push++;
  let _t57: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t57); _push++;
  let _t58: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t58); _push++;
  let _t59: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t59); _push++;
  let _t60: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t60); _push++;
  let _t61: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t61); _push++;
  let _t62: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t62); _push++;
  let _t63: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t63); _push++;
  let _t64: f32 = stream_in[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_0_0__2_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t64); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_dct_rank_rows(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_2_0__1_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  buf_1_0__10_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows0_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_0__2_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows0_coeff[((k * 8) + j)]));
    }
    buf_2_0__1_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows1_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_1__3_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows1_coeff[((k * 8) + j)]));
    }
    buf_3_0__1_1[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows2_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_2__4_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows2_coeff[((k * 8) + j)]));
    }
    buf_4_0__1_2[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows3_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_3__5_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows3_coeff[((k * 8) + j)]));
    }
    buf_5_0__1_3[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows4_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_4__6_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows4_coeff[((k * 8) + j)]));
    }
    buf_6_0__1_4[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows5_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_5__7_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows5_coeff[((k * 8) + j)]));
    }
    buf_7_0__1_5[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows6_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_6__8_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows6_coeff[((k * 8) + j)]));
    }
    buf_8_0__1_6[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_rows7_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_rows7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_0_7__9_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows7_coeff[((k * 8) + j)]));
    }
    buf_9_0__1_7[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

fn work_split_dct_rank_cols(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t8); _push++;
  let _t9: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t9); _push++;
  let _t10: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t10); _push++;
  let _t11: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t11); _push++;
  let _t12: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t12); _push++;
  let _t13: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t13); _push++;
  let _t14: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t14); _push++;
  let _t15: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t15); _push++;
  let _t16: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t16); _push++;
  let _t17: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t17); _push++;
  let _t18: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t18); _push++;
  let _t19: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t19); _push++;
  let _t20: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t20); _push++;
  let _t21: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t21); _push++;
  let _t22: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t22); _push++;
  let _t23: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t23); _push++;
  let _t24: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t24); _push++;
  let _t25: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t25); _push++;
  let _t26: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t26); _push++;
  let _t27: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t27); _push++;
  let _t28: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t28); _push++;
  let _t29: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t29); _push++;
  let _t30: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t30); _push++;
  let _t31: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t31); _push++;
  let _t32: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t32); _push++;
  let _t33: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t33); _push++;
  let _t34: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t34); _push++;
  let _t35: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t35); _push++;
  let _t36: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t36); _push++;
  let _t37: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t37); _push++;
  let _t38: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t38); _push++;
  let _t39: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t39); _push++;
  let _t40: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t40); _push++;
  let _t41: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t41); _push++;
  let _t42: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t42); _push++;
  let _t43: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t43); _push++;
  let _t44: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t44); _push++;
  let _t45: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t45); _push++;
  let _t46: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t46); _push++;
  let _t47: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t47); _push++;
  let _t48: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t48); _push++;
  let _t49: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t49); _push++;
  let _t50: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t50); _push++;
  let _t51: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t51); _push++;
  let _t52: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t52); _push++;
  let _t53: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t53); _push++;
  let _t54: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t54); _push++;
  let _t55: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t55); _push++;
  let _t56: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t56); _push++;
  let _t57: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t57); _push++;
  let _t58: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t58); _push++;
  let _t59: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t59); _push++;
  let _t60: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t60); _push++;
  let _t61: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t61); _push++;
  let _t62: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t62); _push++;
  let _t63: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t63); _push++;
  let _t64: f32 = buf_1_0__10_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  buf_10_0__12_0[out_base + (128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = f32(_t64); _push++;
  _ = _pop;
  _ = _push;
}

fn work_join_dct_rank_cols(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  let _t1: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t1); _push++;
  let _t2: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t2); _push++;
  let _t3: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t3); _push++;
  let _t4: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t4); _push++;
  let _t5: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t5); _push++;
  let _t6: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t6); _push++;
  let _t7: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t7); _push++;
  let _t8: f32 = buf_12_0__11_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  stream_out[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(_t8); _push++;
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols0_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols0(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_0__12_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols0_coeff[((k * 8) + j)]));
    }
    buf_12_0__11_0[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols1_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols1(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_1__13_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols1_coeff[((k * 8) + j)]));
    }
    buf_13_0__11_1[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols2_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols2(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_2__14_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols2_coeff[((k * 8) + j)]));
    }
    buf_14_0__11_2[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols3_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols3(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_3__15_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols3_coeff[((k * 8) + j)]));
    }
    buf_15_0__11_3[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols4_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols4(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_4__16_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols4_coeff[((k * 8) + j)]));
    }
    buf_16_0__11_4[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols5_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols5(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_5__17_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols5_coeff[((k * 8) + j)]));
    }
    buf_17_0__11_5[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols6_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols6(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_6__18_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols6_coeff[((k * 8) + j)]));
    }
    buf_18_0__11_6[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

var<private> DCT1D_cols7_coeff: array<f32, 64> = array<f32, 64>(0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f);

fn work_DCT1D_cols7(in_base: i32, out_base: i32, tid: i32) {
  var _pop: i32 = 0;
  var _push: i32 = 0;
  var row: array<f32, 8>;
  for (var j: i32 = 0; j < 8; j++) {
    let _t1: f32 = buf_10_7__19_0[in_base + (128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (var k: i32 = 0; k < 8; k++) {
    var acc: f32 = 0.0f;
    for (var j: i32 = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols7_coeff[((k * 8) + j)]));
    }
    buf_19_0__11_7[out_base + (128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = f32(acc); _push++;
  }
  _ = _pop;
  _ = _push;
}

@compute @workgroup_size(512, 1, 1)
fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,
              @builtin(workgroup_id) wid: vec3<u32>) {
  let tid: i32 = i32(lid.x);
  let sm: i32 = i32(wid.x);
  // staging predicates, one per pipeline stage (depth 6)
  if tid == 0 { for (var s: i32 = 0; s < 6; s++) { stage_on[s] = 0; } }
  workgroupBarrier();
  for (var it: i32 = 0; it < iterations + 6; it++) {
    if tid == 0 {
      for (var s: i32 = 5; s > 0; s--) { stage_on[s] = stage_on[s-1]; }
      stage_on[0] = select(0, 1, it < iterations);
    }
    workgroupBarrier();
    switch sm {
      case 0: {
        // (DCT1D_rows0, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows0(region_2(it - 1), region_2(it - 1), tid);
        }
        // (split_dct_rank_rows, k=0) o=0 f=0 threads=512
        if stage_on[0] != 0 && tid < 512 {
          work_split_dct_rank_rows(region_0(it - 0), region_0(it - 0), tid);
        }
      }
      case 1: {
        // (split_dct_rank_cols, k=0) o=0 f=3 threads=512
        if stage_on[3] != 0 && tid < 512 {
          work_split_dct_rank_cols(region_10(it - 3), region_10(it - 3), tid);
        }
        // (DCT1D_rows1, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows1(region_3(it - 1), region_3(it - 1), tid);
        }
      }
      case 2: {
        // (DCT1D_rows2, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows2(region_4(it - 1), region_4(it - 1), tid);
        }
        // (join_dct_rank_rows, k=5) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
        // (join_dct_rank_rows, k=4) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
        // (join_dct_rank_rows, k=3) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
        // (join_dct_rank_rows, k=2) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
        // (join_dct_rank_rows, k=1) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
        // (join_dct_rank_rows, k=0) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
      }
      case 3: {
        // (join_dct_rank_cols, k=3) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_dct_rank_cols, k=2) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_dct_rank_cols, k=1) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_dct_rank_cols, k=0) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (DCT1D_rows3, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows3(region_5(it - 1), region_5(it - 1), tid);
        }
        // (join_dct_rank_rows, k=7) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
        // (join_dct_rank_rows, k=6) o=0 f=2 threads=512
        if stage_on[2] != 0 && tid < 512 {
          work_join_dct_rank_rows(region_1(it - 2), region_1(it - 2), tid);
        }
      }
      case 4: {
        // (join_dct_rank_cols, k=7) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_dct_rank_cols, k=6) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_dct_rank_cols, k=5) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (join_dct_rank_cols, k=4) o=0 f=5 threads=512
        if stage_on[5] != 0 && tid < 512 {
          work_join_dct_rank_cols(region_11(it - 5), region_11(it - 5), tid);
        }
        // (DCT1D_rows4, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows4(region_6(it - 1), region_6(it - 1), tid);
        }
      }
      case 5: {
        // (DCT1D_rows5, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows5(region_7(it - 1), region_7(it - 1), tid);
        }
      }
      case 6: {
        // (DCT1D_rows6, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows6(region_8(it - 1), region_8(it - 1), tid);
        }
      }
      case 7: {
        // (DCT1D_rows7, k=0) o=0 f=1 threads=512
        if stage_on[1] != 0 && tid < 512 {
          work_DCT1D_rows7(region_9(it - 1), region_9(it - 1), tid);
        }
      }
      case 8: {
        // (DCT1D_cols0, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols0(region_12(it - 4), region_12(it - 4), tid);
        }
      }
      case 9: {
        // (DCT1D_cols1, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols1(region_13(it - 4), region_13(it - 4), tid);
        }
      }
      case 10: {
        // (DCT1D_cols2, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols2(region_14(it - 4), region_14(it - 4), tid);
        }
      }
      case 11: {
        // (DCT1D_cols3, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols3(region_15(it - 4), region_15(it - 4), tid);
        }
      }
      case 12: {
        // (DCT1D_cols4, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols4(region_16(it - 4), region_16(it - 4), tid);
        }
      }
      case 13: {
        // (DCT1D_cols5, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols5(region_17(it - 4), region_17(it - 4), tid);
        }
      }
      case 14: {
        // (DCT1D_cols6, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols6(region_18(it - 4), region_18(it - 4), tid);
        }
      }
      case 15: {
        // (DCT1D_cols7, k=0) o=0 f=4 threads=512
        if stage_on[4] != 0 && tid < 512 {
          work_DCT1D_cols7(region_19(it - 4), region_19(it - 4), tid);
        }
      }
      default: {}
    }
    // II boundary
    workgroupBarrier();
  }
}
