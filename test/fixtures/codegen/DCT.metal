/* streamit_gpu artifact (metal)
 * quality: heuristic (completed)
 * II: 66404 (lower bound 66404, binding res_mii_sharp)
 * schedule signature: 53bae1c0771a5de168a8c58a494ec1ce
 */
#include <metal_stdlib>
using namespace metal;

static inline int region_0(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_1(int it) { return ((it % 7) + 7) % 7 * 32768; }
static inline int region_2(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_3(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_4(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_5(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_6(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_7(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_8(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_9(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_10(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_11(int it) { return ((it % 7) + 7) % 7 * 0; }
static inline int region_12(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_13(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_14(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_15(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_16(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_17(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_18(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_19(int it) { return ((it % 7) + 7) % 7 * 4096; }

static void work_split_dct_rank_rows(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t16; _push++;
  float _t17 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t17; _push++;
  float _t18 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t18; _push++;
  float _t19 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t19; _push++;
  float _t20 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t20; _push++;
  float _t21 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t21; _push++;
  float _t22 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t22; _push++;
  float _t23 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t23; _push++;
  float _t24 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t24; _push++;
  float _t25 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t25; _push++;
  float _t26 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t26; _push++;
  float _t27 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t27; _push++;
  float _t28 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t28; _push++;
  float _t29 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t29; _push++;
  float _t30 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t30; _push++;
  float _t31 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t31; _push++;
  float _t32 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t32; _push++;
  float _t33 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t33; _push++;
  float _t34 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t34; _push++;
  float _t35 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t35; _push++;
  float _t36 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t36; _push++;
  float _t37 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t37; _push++;
  float _t38 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t38; _push++;
  float _t39 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t39; _push++;
  float _t40 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t40; _push++;
  float _t41 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t41; _push++;
  float _t42 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t42; _push++;
  float _t43 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t43; _push++;
  float _t44 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t44; _push++;
  float _t45 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t45; _push++;
  float _t46 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t46; _push++;
  float _t47 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t47; _push++;
  float _t48 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t48; _push++;
  float _t49 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t49; _push++;
  float _t50 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t50; _push++;
  float _t51 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t51; _push++;
  float _t52 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t52; _push++;
  float _t53 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t53; _push++;
  float _t54 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t54; _push++;
  float _t55 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t55; _push++;
  float _t56 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t56; _push++;
  float _t57 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t57; _push++;
  float _t58 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t58; _push++;
  float _t59 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t59; _push++;
  float _t60 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t60; _push++;
  float _t61 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t61; _push++;
  float _t62 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t62; _push++;
  float _t63 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t63; _push++;
  float _t64 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t64; _push++;
  (void)_pop; (void)_push;
}

static void work_join_dct_rank_rows(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

constant float DCT1D_rows0_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows0(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows0_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows1_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows1(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows1_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows2_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows2(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows2_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows3_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows3(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows3_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows4_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows4(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows4_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows5_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows5(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows5_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows6_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows6(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows6_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_rows7_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_rows7(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_rows7_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

static void work_split_dct_rank_cols(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t16; _push++;
  float _t17 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t17; _push++;
  float _t18 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t18; _push++;
  float _t19 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t19; _push++;
  float _t20 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t20; _push++;
  float _t21 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t21; _push++;
  float _t22 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t22; _push++;
  float _t23 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t23; _push++;
  float _t24 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t24; _push++;
  float _t25 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t25; _push++;
  float _t26 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t26; _push++;
  float _t27 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t27; _push++;
  float _t28 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t28; _push++;
  float _t29 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t29; _push++;
  float _t30 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t30; _push++;
  float _t31 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t31; _push++;
  float _t32 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t32; _push++;
  float _t33 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t33; _push++;
  float _t34 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t34; _push++;
  float _t35 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t35; _push++;
  float _t36 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t36; _push++;
  float _t37 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t37; _push++;
  float _t38 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t38; _push++;
  float _t39 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t39; _push++;
  float _t40 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t40; _push++;
  float _t41 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t41; _push++;
  float _t42 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t42; _push++;
  float _t43 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t43; _push++;
  float _t44 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t44; _push++;
  float _t45 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t45; _push++;
  float _t46 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t46; _push++;
  float _t47 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t47; _push++;
  float _t48 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t48; _push++;
  float _t49 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t49; _push++;
  float _t50 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t50; _push++;
  float _t51 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t51; _push++;
  float _t52 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t52; _push++;
  float _t53 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t53; _push++;
  float _t54 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t54; _push++;
  float _t55 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t55; _push++;
  float _t56 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t56; _push++;
  float _t57 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t57; _push++;
  float _t58 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t58; _push++;
  float _t59 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t59; _push++;
  float _t60 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t60; _push++;
  float _t61 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t61; _push++;
  float _t62 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t62; _push++;
  float _t63 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t63; _push++;
  float _t64 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t64; _push++;
  (void)_pop; (void)_push;
}

static void work_join_dct_rank_cols(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

constant float DCT1D_cols0_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols0(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols0_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols1_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols1(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols1_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols2_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols2(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols2_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols3_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols3(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols3_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols4_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols4(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols4_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols5_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols5(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols5_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols6_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols6(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols6_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

constant float DCT1D_cols7_coeff[64] = { 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.353553391f, 0.49039264f, 0.415734806f, 0.277785117f, 0.097545161f, -0.097545161f, -0.277785117f, -0.415734806f, -0.49039264f, 0.461939766f, 0.191341716f, -0.191341716f, -0.461939766f, -0.461939766f, -0.191341716f, 0.191341716f, 0.461939766f, 0.415734806f, -0.097545161f, -0.49039264f, -0.277785117f, 0.277785117f, 0.49039264f, 0.097545161f, -0.415734806f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.353553391f, -0.353553391f, -0.353553391f, 0.353553391f, 0.277785117f, -0.49039264f, 0.097545161f, 0.415734806f, -0.415734806f, -0.097545161f, 0.49039264f, -0.277785117f, 0.191341716f, -0.461939766f, 0.461939766f, -0.191341716f, -0.191341716f, 0.461939766f, -0.461939766f, 0.191341716f, 0.097545161f, -0.277785117f, 0.415734806f, -0.49039264f, 0.49039264f, -0.415734806f, 0.277785117f, -0.097545161f };
static void work_DCT1D_cols7(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float row[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
    row[j] = _t1;
  }
  for (int k = 0; k < 8; k++) {
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
      acc = (acc + (row[j] * DCT1D_cols7_coeff[((k * 8) + j)]));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = acc; _push++;
  }
  (void)_pop; (void)_push;
}

kernel void swp_kernel(device float* buf_0_0__2_0 [[buffer(0)]],
                       device float* buf_2_0__1_0 [[buffer(1)]],
                       device float* buf_0_1__3_0 [[buffer(2)]],
                       device float* buf_3_0__1_1 [[buffer(3)]],
                       device float* buf_0_2__4_0 [[buffer(4)]],
                       device float* buf_4_0__1_2 [[buffer(5)]],
                       device float* buf_0_3__5_0 [[buffer(6)]],
                       device float* buf_5_0__1_3 [[buffer(7)]],
                       device float* buf_0_4__6_0 [[buffer(8)]],
                       device float* buf_6_0__1_4 [[buffer(9)]],
                       device float* buf_0_5__7_0 [[buffer(10)]],
                       device float* buf_7_0__1_5 [[buffer(11)]],
                       device float* buf_0_6__8_0 [[buffer(12)]],
                       device float* buf_8_0__1_6 [[buffer(13)]],
                       device float* buf_0_7__9_0 [[buffer(14)]],
                       device float* buf_9_0__1_7 [[buffer(15)]],
                       device float* buf_10_0__12_0 [[buffer(16)]],
                       device float* buf_12_0__11_0 [[buffer(17)]],
                       device float* buf_10_1__13_0 [[buffer(18)]],
                       device float* buf_13_0__11_1 [[buffer(19)]],
                       device float* buf_10_2__14_0 [[buffer(20)]],
                       device float* buf_14_0__11_2 [[buffer(21)]],
                       device float* buf_10_3__15_0 [[buffer(22)]],
                       device float* buf_15_0__11_3 [[buffer(23)]],
                       device float* buf_10_4__16_0 [[buffer(24)]],
                       device float* buf_16_0__11_4 [[buffer(25)]],
                       device float* buf_10_5__17_0 [[buffer(26)]],
                       device float* buf_17_0__11_5 [[buffer(27)]],
                       device float* buf_10_6__18_0 [[buffer(28)]],
                       device float* buf_18_0__11_6 [[buffer(29)]],
                       device float* buf_10_7__19_0 [[buffer(30)]],
                       device float* buf_19_0__11_7 [[buffer(31)]],
                       device float* buf_1_0__10_0 [[buffer(32)]],
                       const device float* stream_in [[buffer(33)]],
                       device float* stream_out [[buffer(34)]],
                       constant int& iterations [[buffer(35)]],
                       uint tid_u [[thread_position_in_threadgroup]],
                       uint sm_u [[threadgroup_position_in_grid]])
{
  int tid = (int)tid_u;
  int sm = (int)sm_u;
  /* staging predicates, one per pipeline stage (depth 6) */
  threadgroup int stage_on[6];
  if (tid == 0) for (int s = 0; s < 6; s++) stage_on[s] = 0;
  threadgroup_barrier(mem_flags::mem_threadgroup);
  for (int it = 0; it < iterations + 6; it++) {
    if (tid == 0) { for (int s = 5; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    threadgroup_barrier(mem_flags::mem_threadgroup);
    switch (sm) {
    case 0: {
      /* (DCT1D_rows0, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__1_0 + region_2(it - 1), tid);
      /* (split_dct_rank_rows, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_dct_rank_rows(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      break; }
    case 1: {
      /* (split_dct_rank_cols, k=0) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_dct_rank_cols(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (DCT1D_rows1, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows1(buf_0_1__3_0 + region_3(it - 1), buf_3_0__1_1 + region_3(it - 1), tid);
      break; }
    case 2: {
      /* (DCT1D_rows2, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows2(buf_0_2__4_0 + region_4(it - 1), buf_4_0__1_2 + region_4(it - 1), tid);
      /* (join_dct_rank_rows, k=5) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      /* (join_dct_rank_rows, k=4) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      /* (join_dct_rank_rows, k=3) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      /* (join_dct_rank_rows, k=2) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      /* (join_dct_rank_rows, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      /* (join_dct_rank_rows, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      break; }
    case 3: {
      /* (join_dct_rank_cols, k=3) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_dct_rank_cols, k=2) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_dct_rank_cols, k=1) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_dct_rank_cols, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (DCT1D_rows3, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows3(buf_0_3__5_0 + region_5(it - 1), buf_5_0__1_3 + region_5(it - 1), tid);
      /* (join_dct_rank_rows, k=7) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      /* (join_dct_rank_rows, k=6) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_dct_rank_rows(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      break; }
    case 4: {
      /* (join_dct_rank_cols, k=7) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_dct_rank_cols, k=6) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_dct_rank_cols, k=5) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_dct_rank_cols, k=4) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_dct_rank_cols(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (DCT1D_rows4, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows4(buf_0_4__6_0 + region_6(it - 1), buf_6_0__1_4 + region_6(it - 1), tid);
      break; }
    case 5: {
      /* (DCT1D_rows5, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows5(buf_0_5__7_0 + region_7(it - 1), buf_7_0__1_5 + region_7(it - 1), tid);
      break; }
    case 6: {
      /* (DCT1D_rows6, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows6(buf_0_6__8_0 + region_8(it - 1), buf_8_0__1_6 + region_8(it - 1), tid);
      break; }
    case 7: {
      /* (DCT1D_rows7, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DCT1D_rows7(buf_0_7__9_0 + region_9(it - 1), buf_9_0__1_7 + region_9(it - 1), tid);
      break; }
    case 8: {
      /* (DCT1D_cols0, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols0(buf_10_0__12_0 + region_12(it - 4), buf_12_0__11_0 + region_12(it - 4), tid);
      break; }
    case 9: {
      /* (DCT1D_cols1, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols1(buf_10_1__13_0 + region_13(it - 4), buf_13_0__11_1 + region_13(it - 4), tid);
      break; }
    case 10: {
      /* (DCT1D_cols2, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols2(buf_10_2__14_0 + region_14(it - 4), buf_14_0__11_2 + region_14(it - 4), tid);
      break; }
    case 11: {
      /* (DCT1D_cols3, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols3(buf_10_3__15_0 + region_15(it - 4), buf_15_0__11_3 + region_15(it - 4), tid);
      break; }
    case 12: {
      /* (DCT1D_cols4, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols4(buf_10_4__16_0 + region_16(it - 4), buf_16_0__11_4 + region_16(it - 4), tid);
      break; }
    case 13: {
      /* (DCT1D_cols5, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols5(buf_10_5__17_0 + region_17(it - 4), buf_17_0__11_5 + region_17(it - 4), tid);
      break; }
    case 14: {
      /* (DCT1D_cols6, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols6(buf_10_6__18_0 + region_18(it - 4), buf_18_0__11_6 + region_18(it - 4), tid);
      break; }
    case 15: {
      /* (DCT1D_cols7, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DCT1D_cols7(buf_10_7__19_0 + region_19(it - 4), buf_19_0__11_7 + region_19(it - 4), tid);
      break; }
    }
    /* II boundary */
  }
}

/* host launch (Metal):
 *   dispatchThreadgroups: 16 threadgroups x 512 threads
 *   newBuffer buf_0_0__2_0: 114688 bytes
 *   newBuffer buf_2_0__1_0: 114688 bytes
 *   newBuffer buf_0_1__3_0: 114688 bytes
 *   newBuffer buf_3_0__1_1: 114688 bytes
 *   newBuffer buf_0_2__4_0: 114688 bytes
 *   newBuffer buf_4_0__1_2: 114688 bytes
 *   newBuffer buf_0_3__5_0: 114688 bytes
 *   newBuffer buf_5_0__1_3: 114688 bytes
 *   newBuffer buf_0_4__6_0: 114688 bytes
 *   newBuffer buf_6_0__1_4: 114688 bytes
 *   newBuffer buf_0_5__7_0: 114688 bytes
 *   newBuffer buf_7_0__1_5: 114688 bytes
 *   newBuffer buf_0_6__8_0: 114688 bytes
 *   newBuffer buf_8_0__1_6: 114688 bytes
 *   newBuffer buf_0_7__9_0: 114688 bytes
 *   newBuffer buf_9_0__1_7: 114688 bytes
 *   newBuffer buf_10_0__12_0: 114688 bytes
 *   newBuffer buf_12_0__11_0: 114688 bytes
 *   newBuffer buf_10_1__13_0: 114688 bytes
 *   newBuffer buf_13_0__11_1: 114688 bytes
 *   newBuffer buf_10_2__14_0: 114688 bytes
 *   newBuffer buf_14_0__11_2: 114688 bytes
 *   newBuffer buf_10_3__15_0: 114688 bytes
 *   newBuffer buf_15_0__11_3: 114688 bytes
 *   newBuffer buf_10_4__16_0: 114688 bytes
 *   newBuffer buf_16_0__11_4: 114688 bytes
 *   newBuffer buf_10_5__17_0: 114688 bytes
 *   newBuffer buf_17_0__11_5: 114688 bytes
 *   newBuffer buf_10_6__18_0: 114688 bytes
 *   newBuffer buf_18_0__11_6: 114688 bytes
 *   newBuffer buf_10_7__19_0: 114688 bytes
 *   newBuffer buf_19_0__11_7: 114688 bytes
 *   newBuffer buf_1_0__10_0: 917504 bytes
 *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. (9); iterations = 1024
 */
